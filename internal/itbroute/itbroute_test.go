package itbroute

import (
	"testing"
	"testing/quick"

	"itbsim/internal/topology"
	"itbsim/internal/updown"
)

func torus(t *testing.T, rows, cols, hosts int) (*topology.Network, *updown.Assignment) {
	t.Helper()
	net, err := topology.NewTorus(rows, cols, hosts, 16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := updown.NewAssignment(net, 0)
	if err != nil {
		t.Fatal(err)
	}
	return net, a
}

func TestMinimalPathsAreMinimal(t *testing.T) {
	net, _ := torus(t, 4, 4, 1)
	for src := 0; src < net.Switches; src++ {
		d := net.Distances(src)
		for dst := 0; dst < net.Switches; dst++ {
			paths := MinimalPaths(net, src, dst, 10)
			if len(paths) == 0 {
				t.Fatalf("no minimal paths %d -> %d", src, dst)
			}
			for _, p := range paths {
				if len(p)-1 != d[dst] {
					t.Fatalf("path %v has %d hops, shortest is %d", p, len(p)-1, d[dst])
				}
				if p[0] != src || p[len(p)-1] != dst {
					t.Fatalf("path %v endpoints wrong", p)
				}
				for i := 0; i+1 < len(p); i++ {
					if net.LinkBetween(p[i], p[i+1]) < 0 {
						t.Fatalf("path %v has non-adjacent hop", p)
					}
				}
			}
		}
	}
}

func TestMinimalPathsLimit(t *testing.T) {
	net, _ := torus(t, 8, 8, 1)
	// Opposite corner has many shortest paths; the limit must cap them.
	paths := MinimalPaths(net, 0, topology.TorusID(4, 4, 8), 10)
	if len(paths) != 10 {
		t.Errorf("got %d paths, want exactly 10 (limit)", len(paths))
	}
}

func TestSplitPathLegalSegments(t *testing.T) {
	net, a := torus(t, 4, 4, 1)
	for src := 0; src < net.Switches; src++ {
		for dst := 0; dst < net.Switches; dst++ {
			for _, p := range MinimalPaths(net, src, dst, 10) {
				sp, err := SplitPath(a, p)
				if err != nil {
					t.Fatalf("split %v: %v", p, err)
				}
				for _, seg := range sp.Segments() {
					if !a.LegalSwitchPath(seg) {
						t.Fatalf("segment %v of %v illegal", seg, p)
					}
				}
				// Segments must chain: end switch of one = start of next.
				segs := sp.Segments()
				for i := 0; i+1 < len(segs); i++ {
					if segs[i][len(segs[i])-1] != segs[i+1][0] {
						t.Fatalf("segments of %v do not chain: %v", p, segs)
					}
				}
				if segs[0][0] != src || segs[len(segs)-1][len(segs[len(segs)-1])-1] != dst {
					t.Fatalf("segments of %v lose endpoints", p)
				}
			}
		}
	}
}

func TestSplitLegalPathNeedsNoITB(t *testing.T) {
	net, a := torus(t, 4, 4, 1)
	for src := 0; src < net.Switches; src++ {
		for dst := 0; dst < net.Switches; dst++ {
			for _, p := range MinimalPaths(net, src, dst, 10) {
				if !a.LegalSwitchPath(p) {
					continue
				}
				sp, err := SplitPath(a, p)
				if err != nil {
					t.Fatal(err)
				}
				if sp.NumITBs() != 0 {
					t.Fatalf("legal path %v split with %d ITBs", p, sp.NumITBs())
				}
			}
		}
	}
}

func TestSplitIllegalPathUsesITB(t *testing.T) {
	net, a := torus(t, 8, 8, 1)
	found := false
	for src := 0; src < net.Switches && !found; src++ {
		for dst := 0; dst < net.Switches && !found; dst++ {
			for _, p := range MinimalPaths(net, src, dst, 10) {
				if a.LegalSwitchPath(p) {
					continue
				}
				sp, err := SplitPath(a, p)
				if err != nil {
					t.Fatal(err)
				}
				if sp.NumITBs() == 0 {
					t.Fatalf("illegal path %v split with 0 ITBs", p)
				}
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no illegal minimal path found in an 8x8 torus; expected ~20%")
	}
}

func TestSplitPathNonAdjacent(t *testing.T) {
	_, a := torus(t, 4, 4, 1)
	if _, err := SplitPath(a, []int{0, 5}); err == nil {
		t.Error("non-adjacent path accepted")
	}
}

func TestSplitPathTrivial(t *testing.T) {
	_, a := torus(t, 4, 4, 1)
	sp, err := SplitPath(a, []int{3})
	if err != nil || sp.NumITBs() != 0 {
		t.Errorf("single-switch path: %v %v", sp, err)
	}
	segs := sp.Segments()
	if len(segs) != 1 || len(segs[0]) != 1 {
		t.Errorf("segments = %v", segs)
	}
}

func TestMinimalSplitsAndBest(t *testing.T) {
	net, a := torus(t, 8, 8, 1)
	for src := 0; src < net.Switches; src += 7 {
		for dst := 0; dst < net.Switches; dst += 5 {
			if src == dst {
				continue
			}
			splits, err := MinimalSplits(a, src, dst, 10)
			if err != nil {
				t.Fatal(err)
			}
			best := BestSplit(splits)
			for _, s := range splits {
				if s.NumITBs() < best.NumITBs() {
					t.Fatalf("BestSplit did not minimise ITBs: %d < %d", s.NumITBs(), best.NumITBs())
				}
			}
			// Minimal legal up*/down* path exists => best needs 0 ITBs.
			legal := a.LegalDistances(src)
			raw := net.Distances(src)
			if legal[dst] == raw[dst] {
				// A minimal legal path exists; it may not be among the
				// first 10 enumerated minimal paths, so only check when
				// some split has 0 ITBs that BestSplit found it.
				zero := false
				for _, s := range splits {
					if s.NumITBs() == 0 {
						zero = true
					}
				}
				if zero && best.NumITBs() != 0 {
					t.Fatalf("BestSplit missed a 0-ITB split for %d -> %d", src, dst)
				}
			}
		}
	}
}

func TestCDGOfITBSegmentsAcyclic(t *testing.T) {
	// The composed ITB routing must have an acyclic channel dependency
	// graph once routes are split at in-transit hosts (ejection removes
	// the down->up dependency). This is the paper's core deadlock-freedom
	// argument; verify it holds for every minimal path in a torus.
	net, a := torus(t, 4, 4, 1)
	g := updown.NewDependencyGraph(net)
	for src := 0; src < net.Switches; src++ {
		for dst := 0; dst < net.Switches; dst++ {
			splits, err := MinimalSplits(a, src, dst, 10)
			if err != nil {
				t.Fatal(err)
			}
			for _, sp := range splits {
				for _, seg := range sp.Segments() {
					g.AddRoute(updown.ChannelSeq(net, seg))
				}
			}
		}
	}
	if !g.Acyclic() {
		t.Fatal("ITB-split minimal routes produced a cyclic CDG")
	}
}

func TestCDGOfUnsplitMinimalRoutesCyclic(t *testing.T) {
	// Control experiment: without ITB splitting, using raw minimal paths
	// in a torus must create cyclic channel dependencies (that is why
	// up*/down* forbids them).
	net, a := torus(t, 4, 4, 1)
	_ = a
	g := updown.NewDependencyGraph(net)
	for src := 0; src < net.Switches; src++ {
		for dst := 0; dst < net.Switches; dst++ {
			for _, p := range MinimalPaths(net, src, dst, 10) {
				g.AddRoute(updown.ChannelSeq(net, p))
			}
		}
	}
	if g.Acyclic() {
		t.Fatal("raw minimal routes in a torus should produce a cyclic CDG")
	}
}

func TestPaperAverageITBCount(t *testing.T) {
	// §4.7.1: on average 0.43 in-transit buffers per message with ITB-SP
	// and 0.54 with ITB-RR under uniform traffic on the 8x8 torus. The
	// static expectation over uniformly chosen switch pairs should be in
	// that neighbourhood.
	net, a := torus(t, 8, 8, 8)
	var spSum, rrSum float64
	var pairs int
	for src := 0; src < net.Switches; src++ {
		for dst := 0; dst < net.Switches; dst++ {
			if src == dst {
				continue
			}
			splits, err := MinimalSplits(a, src, dst, 10)
			if err != nil {
				t.Fatal(err)
			}
			pairs++
			spSum += float64(BestSplit(splits).NumITBs())
			var rr float64
			for _, s := range splits {
				rr += float64(s.NumITBs())
			}
			rrSum += rr / float64(len(splits))
		}
	}
	sp := spSum / float64(pairs)
	rr := rrSum / float64(pairs)
	t.Logf("avg ITBs per route: SP=%.3f RR=%.3f (paper: 0.43 / 0.54)", sp, rr)
	if sp < 0.2 || sp > 0.7 {
		t.Errorf("ITB-SP average %.3f far from paper's 0.43", sp)
	}
	if rr < sp {
		t.Errorf("ITB-RR average %.3f should be >= ITB-SP %.3f", rr, sp)
	}
	if rr < 0.3 || rr > 0.9 {
		t.Errorf("ITB-RR average %.3f far from paper's 0.54", rr)
	}
}

func TestSplitPropertyRandomTopologies(t *testing.T) {
	check := func(seed int64) bool {
		sw := 4 + int(seed%11+11)%11
		net, err := topology.NewRandomIrregular(sw, 4, 1, 16, seed)
		if err != nil {
			return false
		}
		a, err := updown.NewAssignment(net, 0)
		if err != nil {
			return false
		}
		for src := 0; src < net.Switches; src++ {
			raw := net.Distances(src)
			for dst := 0; dst < net.Switches; dst++ {
				if src == dst {
					continue
				}
				splits, err := MinimalSplits(a, src, dst, 5)
				if err != nil {
					return false
				}
				for _, sp := range splits {
					if len(sp.Path)-1 != raw[dst] {
						return false
					}
					for _, seg := range sp.Segments() {
						if !a.LegalSwitchPath(seg) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
