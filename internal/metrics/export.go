package metrics

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// ExportPoint labels one Metrics with its experimental coordinates for
// serialization: which curve (scheme × pattern), at which offered load.
type ExportPoint struct {
	Label   string   `json:"label"`
	Scheme  string   `json:"scheme"`
	Pattern string   `json:"pattern"`
	Load    float64  `json:"load"`
	Metrics *Metrics `json:"metrics"`
}

// jsonPoint adds the histogram export forms (the Histogram fields
// themselves are not serialized directly).
type jsonPoint struct {
	ExportPoint
	Latency    *HistogramExport `json:"latency_hist,omitempty"`
	NetLatency *HistogramExport `json:"net_latency_hist,omitempty"`
}

type jsonDoc struct {
	SchemaVersion int         `json:"schema_version"`
	Points        []jsonPoint `json:"points"`
}

// WriteJSON emits the telemetry of the given points as one indented JSON
// document. The schema is documented in docs/METRICS.md.
func WriteJSON(w io.Writer, points []ExportPoint) error {
	doc := jsonDoc{SchemaVersion: SchemaVersion}
	for _, p := range points {
		jp := jsonPoint{ExportPoint: p}
		if p.Metrics != nil {
			if p.Metrics.Latency != nil {
				e := p.Metrics.Latency.Export()
				jp.Latency = &e
			}
			if p.Metrics.NetLatency != nil {
				e := p.Metrics.NetLatency.Export()
				jp.NetLatency = &e
			}
		}
		doc.Points = append(doc.Points, jp)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// CSVHeader is the column set of the CSV telemetry export: a long-format
// table with one row per scalar metric value. See docs/METRICS.md for the
// record/field vocabulary.
var CSVHeader = []string{"record", "label", "scheme", "pattern", "load", "id", "field", "value"}

// WriteCSV emits the telemetry of the given points as one long-format CSV
// table (columns CSVHeader, one row per scalar). The schema is documented
// in docs/METRICS.md.
func WriteCSV(w io.Writer, points []ExportPoint) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(CSVHeader); err != nil {
		return err
	}
	emit := func(p ExportPoint, record string, id int, field string, value string) error {
		return cw.Write([]string{
			record, p.Label, p.Scheme, p.Pattern,
			strconv.FormatFloat(p.Load, 'g', -1, 64),
			strconv.Itoa(id), field, value,
		})
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	i := func(v int64) string { return strconv.FormatInt(v, 10) }
	for _, p := range points {
		m := p.Metrics
		if m == nil {
			continue
		}
		for _, row := range []struct {
			field string
			value string
		}{
			{"schema_version", i(int64(m.SchemaVersion))},
			{"cycle_ns", f(m.CycleNs)},
			{"window_cycles", i(m.WindowCycles)},
			{"windows", i(int64(m.Windows))},
			{"measured_cycles", i(m.MeasuredCycles)},
			{"replicas", i(int64(m.Replicas))},
		} {
			if err := emit(p, "run", 0, row.field, row.value); err != nil {
				return err
			}
		}
		for _, lm := range m.Links {
			for _, row := range []struct {
				field string
				value string
			}{
				{"from", i(int64(lm.From))},
				{"to", i(int64(lm.To))},
				{"busy_frac", f(lm.BusyFrac)},
				{"stopped_frac", f(lm.StoppedFrac)},
				{"peak_window_frac", f(lm.PeakWindowFrac)},
			} {
				if err := emit(p, "link", lm.Channel, row.field, row.value); err != nil {
					return err
				}
			}
			for w, frac := range lm.Window {
				if err := emit(p, "link_window", lm.Channel, strconv.Itoa(w), f(frac)); err != nil {
					return err
				}
			}
		}
		for _, sm := range m.Switches {
			if err := emit(p, "switch", sm.Switch, "mean_buf_flits", f(sm.MeanBufFlits)); err != nil {
				return err
			}
			if err := emit(p, "switch", sm.Switch, "peak_buf_flits", i(int64(sm.PeakBufFlits))); err != nil {
				return err
			}
		}
		for _, hm := range m.Hosts {
			for _, row := range []struct {
				field string
				value string
			}{
				{"ejects", i(hm.Ejects)},
				{"reinjects", i(hm.Reinjects)},
				{"mean_pool_bytes", f(hm.MeanPoolBytes)},
				{"peak_pool_bytes", i(int64(hm.PeakPoolBytes))},
				{"backpressure_cycles", i(hm.BackpressureCycles)},
			} {
				if err := emit(p, "host", hm.Host, row.field, row.value); err != nil {
					return err
				}
			}
		}
		for _, vm := range m.VCs {
			if err := emit(p, "vc", vm.VC, "mean_buf_flits", f(vm.MeanBufFlits)); err != nil {
				return err
			}
			if err := emit(p, "vc", vm.VC, "peak_buf_flits", i(int64(vm.PeakBufFlits))); err != nil {
				return err
			}
			for w, occ := range vm.Window {
				if err := emit(p, "vc_window", vm.VC, strconv.Itoa(w), f(occ)); err != nil {
					return err
				}
			}
		}
		if m.Traffic != nil {
			for w := range m.Traffic.Delivered {
				for _, row := range []struct {
					field string
					value string
				}{
					{"delivered", i(m.Traffic.Delivered[w])},
					{"dropped", i(m.Traffic.Dropped[w])},
					{"retransmits", i(m.Traffic.Retransmits[w])},
				} {
					if err := emit(p, "traffic_window", w, row.field, row.value); err != nil {
						return err
					}
				}
			}
		}
		for _, hist := range []struct {
			name string
			h    *Histogram
		}{{"latency", m.Latency}, {"net_latency", m.NetLatency}} {
			if hist.h == nil {
				continue
			}
			if err := writeHistCSV(emit, p, hist.name, hist.h); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeHistCSV(emit func(ExportPoint, string, int, string, string) error, p ExportPoint, name string, h *Histogram) error {
	e := h.Export()
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, row := range []struct {
		field string
		value string
	}{
		{"count", strconv.FormatUint(e.Count, 10)},
		{"mean_ns", f(e.MeanNs)},
		{"min_ns", f(e.MinNs)},
		{"max_ns", f(e.MaxNs)},
		{"p50_ns", f(e.P50Ns)},
		{"p95_ns", f(e.P95Ns)},
		{"p99_ns", f(e.P99Ns)},
	} {
		if err := emit(p, name, 0, row.field, row.value); err != nil {
			return err
		}
	}
	for bi, b := range e.Buckets {
		for _, row := range []struct {
			field string
			value string
		}{
			{"lo_ns", f(b.Lo)},
			{"hi_ns", f(b.Hi)},
			{"count", strconv.FormatUint(b.Count, 10)},
		} {
			if err := emit(p, name+"_bucket", bi, row.field, row.value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteFile dispatches on the file extension: ".csv" writes the CSV form,
// anything else the JSON form.
func WriteFile(w io.Writer, path string, points []ExportPoint) error {
	if len(path) > 4 && path[len(path)-4:] == ".csv" {
		return WriteCSV(w, points)
	}
	return WriteJSON(w, points)
}

// String implements a compact human-readable one-line summary, handy in
// logs and tests.
func (p ExportPoint) String() string {
	n := 0
	if p.Metrics != nil {
		n = len(p.Metrics.Links)
	}
	return fmt.Sprintf("%s load=%g (%d links)", p.Label, p.Load, n)
}
