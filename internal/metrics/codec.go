package metrics

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codecs for the streaming state of this package, used by the
// simulator checkpoint (docs/CHECKPOINT.md): a mid-run Collector and its
// Histograms round-trip exactly, so a restored run's exported telemetry is
// byte-identical to the uninterrupted run's. The encoding is little-endian
// with length-prefixed slices and a leading format version byte per type.

const (
	histogramCodecVersion = 1
	collectorCodecVersion = 1
)

// enc is a sticky-error little-endian byte writer.
type enc struct {
	buf []byte
}

func (e *enc) u8(v uint8)   { e.buf = append(e.buf, v) }
func (e *enc) u32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *enc) u64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *enc) i64(v int64)  { e.u64(uint64(v)) }
func (e *enc) f64(v float64) {
	e.u64(math.Float64bits(v))
}

func (e *enc) i64s(s []int64) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.i64(v)
	}
}

func (e *enc) i32s(s []int32) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(uint32(v))
	}
}

func (e *enc) u32s(s []uint32) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u32(v)
	}
}

func (e *enc) u64s(s []uint64) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.u64(v)
	}
}

func (e *enc) f64s(s []float64) {
	e.u32(uint32(len(s)))
	for _, v := range s {
		e.f64(v)
	}
}

// dec is a sticky-error little-endian byte reader: after the first short
// read every subsequent call returns zero values and err stays set.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) fail(n int) bool {
	if d.err != nil {
		return true
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("metrics: truncated codec input at offset %d (need %d of %d bytes)", d.off, n, len(d.buf))
		return true
	}
	return false
}

func (d *dec) u8() uint8 {
	if d.fail(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

func (d *dec) u32() uint32 {
	if d.fail(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

func (d *dec) u64() uint64 {
	if d.fail(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

func (d *dec) i64() int64    { return int64(d.u64()) }
func (d *dec) f64() float64  { return math.Float64frombits(d.u64()) }
func (d *dec) sliceLen() int { return int(d.u32()) }

func (d *dec) i64s() []int64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int64, n)
	for i := range s {
		s[i] = d.i64()
	}
	return s
}

func (d *dec) i32s() []int32 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]int32, n)
	for i := range s {
		s[i] = int32(d.u32())
	}
	return s
}

func (d *dec) u32s() []uint32 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]uint32, n)
	for i := range s {
		s[i] = d.u32()
	}
	return s
}

func (d *dec) u64s() []uint64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]uint64, n)
	for i := range s {
		s[i] = d.u64()
	}
	return s
}

func (d *dec) f64s() []float64 {
	n := d.sliceLen()
	if d.err != nil || n == 0 {
		return nil
	}
	s := make([]float64, n)
	for i := range s {
		s[i] = d.f64()
	}
	return s
}

// MarshalBinary serializes the histogram's complete state: bucket counts and
// the exact summary moments (count, sum, min, max).
func (h *Histogram) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.u8(histogramCodecVersion)
	e.u64(h.count)
	e.f64(h.sum)
	e.f64(h.min)
	e.f64(h.max)
	e.u64s(h.counts)
	return e.buf, nil
}

// UnmarshalBinary restores a histogram serialized by MarshalBinary,
// overwriting the receiver. The receiver may be freshly built by
// NewHistogram or zero-valued (bucket storage is allocated as needed).
func (h *Histogram) UnmarshalBinary(data []byte) error {
	d := &dec{buf: data}
	if v := d.u8(); d.err == nil && v != histogramCodecVersion {
		return fmt.Errorf("metrics: histogram codec version %d, want %d", v, histogramCodecVersion)
	}
	count := d.u64()
	sum := d.f64()
	mn := d.f64()
	mx := d.f64()
	counts := d.u64s()
	if d.err != nil {
		return d.err
	}
	if len(counts) != NumBuckets {
		return fmt.Errorf("metrics: histogram has %d buckets, want %d", len(counts), NumBuckets)
	}
	if d.off != len(data) {
		return fmt.Errorf("metrics: %d trailing bytes after histogram", len(data)-d.off)
	}
	h.count, h.sum, h.min, h.max = count, sum, mn, mx
	if h.counts == nil {
		h.counts = counts
	} else {
		copy(h.counts, counts)
	}
	return nil
}

// MarshalBinary serializes a mid-run collector's complete state, including
// the mutable window width (rebinning doubles it) and every series.
func (c *Collector) MarshalBinary() ([]byte, error) {
	e := &enc{}
	e.u8(collectorCodecVersion)
	e.i64(c.windowCycles)
	e.i64(int64(c.maxWindows))
	e.i64(c.startCycle)
	e.i64(c.nextSample)
	e.i64(int64(c.channels))
	e.i64(int64(c.switches))
	e.i64(int64(c.hosts))
	e.i64s(c.busyPrev)
	e.u32s(c.busySeries)
	e.i64(int64(c.windows))
	e.f64s(c.peakBusyFrac)
	e.i64s(c.occSum)
	e.i32s(c.occPeak)
	e.i64s(c.poolSum)
	e.i32s(c.poolPeak)
	e.i64s(c.ejects)
	e.i64s(c.reinjects)
	e.i64s(c.backpressure)
	e.i64(c.delivPrev)
	e.i64(c.dropPrev)
	e.i64(c.retransPrev)
	e.u32s(c.delivSeries)
	e.u32s(c.dropSeries)
	e.u32s(c.retransSeries)
	e.i64(int64(c.numVCs))
	e.i64s(c.vcOccSum)
	e.i32s(c.vcOccPeak)
	e.u32s(c.vcOccSeries)
	e.u32s(c.vcCount)
	e.i64(c.samples)
	return e.buf, nil
}

// UnmarshalBinary restores a collector serialized by MarshalBinary into the
// receiver, which must have been built by NewCollector for the same network
// shape (and EnableVCs with the same lane count when the snapshot carries
// VC state); mismatched dimensions are an error.
func (c *Collector) UnmarshalBinary(data []byte) error {
	d := &dec{buf: data}
	if v := d.u8(); d.err == nil && v != collectorCodecVersion {
		return fmt.Errorf("metrics: collector codec version %d, want %d", v, collectorCodecVersion)
	}
	windowCycles := d.i64()
	maxWindows := int(d.i64())
	startCycle := d.i64()
	nextSample := d.i64()
	channels := int(d.i64())
	switches := int(d.i64())
	hosts := int(d.i64())
	busyPrev := d.i64s()
	busySeries := d.u32s()
	windows := int(d.i64())
	peakBusyFrac := d.f64s()
	occSum := d.i64s()
	occPeak := d.i32s()
	poolSum := d.i64s()
	poolPeak := d.i32s()
	ejects := d.i64s()
	reinjects := d.i64s()
	backpressure := d.i64s()
	delivPrev := d.i64()
	dropPrev := d.i64()
	retransPrev := d.i64()
	delivSeries := d.u32s()
	dropSeries := d.u32s()
	retransSeries := d.u32s()
	numVCs := int(d.i64())
	vcOccSum := d.i64s()
	vcOccPeak := d.i32s()
	vcOccSeries := d.u32s()
	vcCount := d.u32s()
	samples := d.i64()
	if d.err != nil {
		return d.err
	}
	if d.off != len(data) {
		return fmt.Errorf("metrics: %d trailing bytes after collector", len(data)-d.off)
	}
	if channels != c.channels || switches != c.switches || hosts != c.hosts {
		return fmt.Errorf("metrics: collector snapshot is for %d/%d/%d channels/switches/hosts, receiver has %d/%d/%d",
			channels, switches, hosts, c.channels, c.switches, c.hosts)
	}
	if numVCs != c.numVCs {
		return fmt.Errorf("metrics: collector snapshot has %d virtual channels, receiver has %d", numVCs, c.numVCs)
	}
	if len(busyPrev) != channels || len(peakBusyFrac) != channels ||
		len(occSum) != switches || len(occPeak) != switches ||
		len(poolSum) != hosts || len(poolPeak) != hosts ||
		len(ejects) != hosts || len(reinjects) != hosts || len(backpressure) != hosts {
		return fmt.Errorf("metrics: collector snapshot arrays do not match its own dimensions")
	}
	c.windowCycles = windowCycles
	c.maxWindows = maxWindows
	c.startCycle = startCycle
	c.nextSample = nextSample
	copy(c.busyPrev, busyPrev)
	c.busySeries = busySeries
	c.windows = windows
	copy(c.peakBusyFrac, peakBusyFrac)
	copy(c.occSum, occSum)
	copy(c.occPeak, occPeak)
	copy(c.poolSum, poolSum)
	copy(c.poolPeak, poolPeak)
	copy(c.ejects, ejects)
	copy(c.reinjects, reinjects)
	copy(c.backpressure, backpressure)
	c.delivPrev, c.dropPrev, c.retransPrev = delivPrev, dropPrev, retransPrev
	c.delivSeries, c.dropSeries, c.retransSeries = delivSeries, dropSeries, retransSeries
	if numVCs > 0 {
		copy(c.vcOccSum, vcOccSum)
		copy(c.vcOccPeak, vcOccPeak)
	}
	c.vcOccSeries = vcOccSeries
	c.vcCount = vcCount
	c.samples = samples
	return nil
}
