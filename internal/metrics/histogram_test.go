package metrics

import (
	"math"
	"sort"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram has count %d sum %g", h.Count(), h.Sum())
	}
	for _, q := range []float64{0, 0.5, 0.95, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("Quantile(%g) of empty = %g, want 0", q, got)
		}
	}
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("empty moments not zero: mean %g min %g max %g", h.Mean(), h.Min(), h.Max())
	}
	if bs := h.Buckets(); len(bs) != 0 {
		t.Errorf("empty histogram exports %d buckets", len(bs))
	}
}

func TestHistogramSingleSample(t *testing.T) {
	for _, v := range []float64{0.25, 1, 6.25, 4434.7, 1e9} {
		h := NewHistogram()
		h.Record(v)
		if h.Count() != 1 {
			t.Fatalf("count %d after one sample", h.Count())
		}
		// Min == Max == the sample; every quantile clamps to it exactly.
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got := h.Quantile(q); got != v {
				t.Errorf("Quantile(%g) of single sample %g = %g", q, v, got)
			}
		}
		if h.Mean() != v || h.Min() != v || h.Max() != v {
			t.Errorf("moments of single sample %g: mean %g min %g max %g", v, h.Mean(), h.Min(), h.Max())
		}
		bs := h.Buckets()
		if len(bs) != 1 || bs[0].Count != 1 {
			t.Fatalf("single sample exports %+v", bs)
		}
		if !(bs[0].Lo <= v && v < bs[0].Hi) {
			t.Errorf("sample %g outside its bucket [%g, %g)", v, bs[0].Lo, bs[0].Hi)
		}
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	// Exact powers of two start a fresh bucket; the value just below a
	// boundary must land in the previous bucket.
	cases := []struct {
		v      float64
		wantLo float64
		wantHi float64
	}{
		{0, 0, 1},
		{0.999, 0, 1},
		{1, 1, 1 + 1.0/subCount},
		{2, 2, 2 * (1 + 1.0/subCount) / 1}, // bucket [2, 2.125)
		{2.124, 2, 2.125},
		{2.125, 2.125, 2.25},
		{1024, 1024, 1088},
	}
	for _, c := range cases {
		idx := bucketIndex(c.v)
		lo, hi := BucketBounds(idx)
		if lo != c.wantLo || hi != c.wantHi {
			t.Errorf("bucket of %g = [%g, %g), want [%g, %g)", c.v, lo, hi, c.wantLo, c.wantHi)
		}
		if !(lo <= c.v && c.v < hi) {
			t.Errorf("value %g not inside its own bucket [%g, %g)", c.v, lo, hi)
		}
	}
	// Pathological inputs clamp instead of corrupting state.
	for _, v := range []float64{-1, math.NaN()} {
		if idx := bucketIndex(v); idx != 0 {
			t.Errorf("bucketIndex(%v) = %d, want 0", v, idx)
		}
	}
	if idx := bucketIndex(math.Inf(1)); idx != NumBuckets-1 {
		t.Errorf("bucketIndex(+Inf) = %d, want last bucket %d", idx, NumBuckets-1)
	}
	// Bucket bounds tile the positive axis without gaps.
	for i := 1; i < NumBuckets-1; i++ {
		_, hi := BucketBounds(i)
		lo, _ := BucketBounds(i + 1)
		if hi != lo {
			t.Fatalf("gap between bucket %d (hi %g) and %d (lo %g)", i, hi, i+1, lo)
		}
	}
}

func TestHistogramQuantilesAgainstSort(t *testing.T) {
	// Against the exact sorted-slice percentiles the simulator used to
	// compute: histogram quantiles must land within one bucket width.
	var xs []float64
	h := NewHistogram()
	v := 3.7
	for i := 0; i < 5000; i++ {
		v = math.Mod(v*1.37+11, 90000) + 6.25
		xs = append(xs, v)
		h.Record(v)
	}
	sort.Float64s(xs)
	for _, q := range []float64{0.5, 0.95, 0.99} {
		exact := xs[int(q*float64(len(xs)-1))]
		got := h.Quantile(q)
		if got < exact || got > exact*(1+1.0/subCount)+1e-9 {
			t.Errorf("Quantile(%g) = %g, exact %g (allowed up to %g)",
				q, got, exact, exact*(1+1.0/subCount))
		}
	}
	// Monotonicity across the whole range.
	prev := 0.0
	for q := 0.0; q <= 1.0; q += 0.01 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("quantiles not monotone: q=%.2f gives %g after %g", q, cur, prev)
		}
		prev = cur
	}
	if h.Quantile(1) != h.Max() {
		t.Errorf("Quantile(1) = %g, want max %g", h.Quantile(1), h.Max())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b, all := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 1; i <= 100; i++ {
		v := float64(i * 7)
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
		all.Record(v)
	}
	a.Merge(b)
	if a.Count() != all.Count() || a.Sum() != all.Sum() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatalf("merge moments diverge: %v vs %v", a.Export(), all.Export())
	}
	for _, q := range []float64{0.25, 0.5, 0.95} {
		if a.Quantile(q) != all.Quantile(q) {
			t.Errorf("merge Quantile(%g) = %g, want %g", q, a.Quantile(q), all.Quantile(q))
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := a.Export()
	a.Merge(NewHistogram())
	a.Merge(nil)
	after := a.Export()
	if before.Count != after.Count || before.MeanNs != after.MeanNs {
		t.Error("merging empty histogram changed contents")
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.Record(10)
	c := h.Clone()
	c.Record(20)
	if h.Count() != 1 || c.Count() != 2 {
		t.Fatalf("clone not independent: orig %d clone %d", h.Count(), c.Count())
	}
}
