package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the export golden files")

// goldenPoints is a small hand-built telemetry fixture covering every
// record family the exporters emit: run scalars, link series, switch and
// host records, the traffic series, and both histograms.
func goldenPoints() []ExportPoint {
	lat := NewHistogram()
	for _, v := range []float64{400, 425, 650, 1200, 1200, 9800} {
		lat.Record(v)
	}
	net := NewHistogram()
	for _, v := range []float64{250, 300, 875} {
		net.Record(v)
	}
	m := &Metrics{
		SchemaVersion:  SchemaVersion,
		CycleNs:        6.25,
		WindowCycles:   8192,
		Windows:        2,
		MeasuredCycles: 16384,
		Replicas:       1,
		Links: []LinkMetrics{
			{Channel: 0, From: 0, To: 1, BusyFrac: 0.25, StoppedFrac: 0.0625, PeakWindowFrac: 0.5, Window: []float64{0.5, 0.125}},
			{Channel: 3, From: 1, To: 0, BusyFrac: 0.125, StoppedFrac: 0, PeakWindowFrac: 0.25, Window: []float64{0.25, 0.0625}},
		},
		Switches: []SwitchMetrics{
			{Switch: 0, MeanBufFlits: 1.5, PeakBufFlits: 4},
			{Switch: 1, MeanBufFlits: 0.5, PeakBufFlits: 2},
		},
		Hosts: []HostMetrics{
			{Host: 0, Ejects: 3, Reinjects: 3, MeanPoolBytes: 64.5, PeakPoolBytes: 1024, BackpressureCycles: 17},
			{Host: 1},
		},
		Traffic: &TrafficMetrics{
			Delivered:   []int64{120, 118},
			Dropped:     []int64{0, 2},
			Retransmits: []int64{0, 1},
		},
		Latency:    lat,
		NetLatency: net,
	}
	return []ExportPoint{
		{Label: "itb torus4x4 uniform", Scheme: "itb", Pattern: "uniform", Load: 0.014, Metrics: m},
		{Label: "no telemetry", Scheme: "ud-rnd", Pattern: "uniform", Load: 0.014, Metrics: nil},
	}
}

// TestExportByteOrderGolden pins the exact bytes — and therefore the
// record order — of both export formats. The CSV and JSON emitters walk
// slices in index order, never maps, so export order is specified rather
// than incidental; this test is the tripwire should anyone reintroduce a
// map into the export path (simlint's detrange rule is the static half of
// the same guarantee). Regenerate with: go test ./internal/metrics -run
// Golden -update
func TestExportByteOrderGolden(t *testing.T) {
	points := goldenPoints()
	for _, form := range []struct {
		name  string
		write func(*bytes.Buffer) error
	}{
		{"export_golden.csv", func(b *bytes.Buffer) error { return WriteCSV(b, points) }},
		{"export_golden.json", func(b *bytes.Buffer) error { return WriteJSON(b, points) }},
	} {
		var buf bytes.Buffer
		if err := form.write(&buf); err != nil {
			t.Fatalf("%s: %v", form.name, err)
		}
		path := filepath.Join("testdata", form.name)
		if *updateGolden {
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%v (regenerate with -update)", err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("%s: export bytes differ from golden (regenerate with -update only if the schema deliberately changed)", form.name)
			got := buf.Bytes()
			for i := 0; i < len(got) && i < len(want); i++ {
				if got[i] != want[i] {
					lo := i - 40
					if lo < 0 {
						lo = 0
					}
					hi := i + 40
					t.Errorf("first difference at byte %d:\n got  ...%q...\n want ...%q...",
						i, got[lo:min(hi, len(got))], want[lo:min(hi, len(want))])
					break
				}
			}
		}
	}
}
