// Package metrics is the network observability layer of the simulator: a
// low-overhead collector for per-link utilization time series, per-switch
// input-buffer occupancy, per-host in-transit-buffer (ITB) activity and
// injection backpressure, plus streaming log-bucketed latency histograms
// with percentile extraction.
//
// The package is deliberately free of simulator dependencies: internal/netsim
// drives a Collector through narrow sampling hooks, and internal/runner
// aggregates the resulting Metrics across replicas. Everything is
// deterministic — sampling is keyed to simulation cycles, never wall clock —
// so metrics are byte-identical across worker counts and runs.
//
// Collection is sampled, not traced: cumulative hardware-style counters
// (flits on a link, buffer occupancy, pool bytes) are snapshotted once per
// window of WindowCycles cycles, so the per-cycle cost is one comparison
// and the per-window cost is linear in the network size. Event counters
// (ejects, re-injections, backpressure stalls) are plain slice increments
// at event rate. The exported telemetry schema (JSON and CSV) is documented
// field by field in docs/METRICS.md.
package metrics

// Config enables and tunes the collector. The zero value of each field
// means "use the default"; a nil *Config disables collection entirely.
type Config struct {
	// WindowCycles is the sampling window width in simulator cycles.
	// Cumulative link counters are snapshotted every window, giving the
	// per-link utilization time series. Default 8192 cycles (51.2 µs at
	// the Myrinet 6.25 ns cycle).
	WindowCycles int64

	// MaxWindows bounds the retained series length. When the run outgrows
	// it, adjacent windows are merged pairwise and WindowCycles doubles —
	// memory stays bounded while the series still spans the whole
	// measurement period. Default 512. Values are rounded up to even.
	MaxWindows int
}

// DefaultWindowCycles is the default sampling window (51.2 µs at 6.25 ns
// per cycle).
const DefaultWindowCycles = 8192

// DefaultMaxWindows is the default retained-series bound.
const DefaultMaxWindows = 512

func (c Config) windowCycles() int64 {
	if c.WindowCycles > 0 {
		return c.WindowCycles
	}
	return DefaultWindowCycles
}

func (c Config) maxWindows() int {
	n := c.MaxWindows
	if n <= 0 {
		n = DefaultMaxWindows
	}
	if n < 2 {
		n = 2
	}
	if n%2 == 1 {
		n++
	}
	return n
}

// Collector accumulates one run's telemetry. It is single-threaded, like
// the simulator that drives it. The driving contract:
//
//  1. NewCollector with the network's channel/switch/host counts.
//  2. Start(cycle) when the measurement window opens.
//  3. Once per cycle, if cycle >= NextSample(), feed one full sample:
//     SampleLink for every channel (cumulative busy/stopped counters),
//     SampleSwitchOcc and SampleHostPool for every switch/host, then
//     CloseWindow(cycle).
//  4. Eject/Reinject/BackpressureStall at event time.
//  5. Finalize(cycle, cycleNs, ends) to produce the immutable Metrics.
type Collector struct {
	windowCycles int64
	maxWindows   int

	startCycle int64
	nextSample int64

	channels, switches, hosts int

	// Per-link cumulative busy-counter snapshots at the last window
	// boundary, for window deltas.
	busyPrev []int64

	// busySeries is row-major [window][channel]: flits carried per window.
	busySeries []uint32
	windows    int

	// Whole-run per-link peaks over windows, in flits (tracked at the
	// original window resolution before any rebinning, so rebinning can
	// only lower — never miss — a peak; peaks are therefore reported
	// against the width the window had when the peak was observed).
	peakBusyFrac []float64

	// Per-switch occupancy samples: running sum and peak.
	occSum  []int64
	occPeak []int32

	// Per-host sampled ITB pool occupancy and event counters.
	poolSum      []int64
	poolPeak     []int32
	ejects       []int64
	reinjects    []int64
	backpressure []int64

	// Network-wide per-window traffic series (messages delivered, packets
	// dropped, retransmissions), cumulative-diffed like the link series.
	// They make throughput dips and recovery after a fault visible.
	delivPrev, dropPrev, retransPrev int64
	delivSeries                      []uint32
	dropSeries                       []uint32
	retransSeries                    []uint32

	// Per-virtual-channel network-wide buffer occupancy (EnableVCs), fed by
	// SampleVCOcc once per lane per boundary. Unlike the link series these
	// are point samples, not deltas, so rebinning accumulates sample sums
	// and vcCount tracks how many samples each series window holds — counts
	// diverge across windows after a rebin (merged windows hold more samples
	// than ones sampled at the widened width), so the count is per window,
	// not a single factor.
	numVCs      int
	vcOccSum    []int64
	vcOccPeak   []int32
	vcOccSeries []uint32 // row-major [window][vc], sums of boundary samples
	vcCount     []uint32 // boundary samples merged into each series window

	samples int64 // boundary samples taken (== windows before rebinning)
}

// NewCollector allocates a collector for a network of the given size.
func NewCollector(cfg Config, channels, switches, hosts int) *Collector {
	return &Collector{
		windowCycles: cfg.windowCycles(),
		maxWindows:   cfg.maxWindows(),
		channels:     channels,
		switches:     switches,
		hosts:        hosts,
		busyPrev:     make([]int64, channels),
		peakBusyFrac: make([]float64, channels),
		occSum:       make([]int64, switches),
		occPeak:      make([]int32, switches),
		poolSum:      make([]int64, hosts),
		poolPeak:     make([]int32, hosts),
		ejects:       make([]int64, hosts),
		reinjects:    make([]int64, hosts),
		backpressure: make([]int64, hosts),
	}
}

// EnableVCs switches on per-virtual-channel occupancy collection for a
// simulator running numVCs lanes. Call once, before Start; the driver then
// feeds SampleVCOcc for every lane at each window boundary.
func (c *Collector) EnableVCs(numVCs int) {
	c.numVCs = numVCs
	c.vcOccSum = make([]int64, numVCs)
	c.vcOccPeak = make([]int32, numVCs)
}

// SampleVCOcc feeds one lane's network-wide buffered flit count (summed over
// every switch input port) at a window boundary. Call for lanes 0..numVCs-1
// in order, once per window.
func (c *Collector) SampleVCOcc(vc, occFlits int) {
	c.vcOccSum[vc] += int64(occFlits)
	if int32(occFlits) > c.vcOccPeak[vc] {
		c.vcOccPeak[vc] = int32(occFlits)
	}
	c.vcOccSeries = append(c.vcOccSeries, uint32(occFlits))
}

// Start opens the measurement period at the given cycle.
func (c *Collector) Start(cycle int64) {
	c.startCycle = cycle
	c.nextSample = cycle + c.windowCycles
}

// NextSample returns the cycle at which the next window sample is due.
func (c *Collector) NextSample() int64 { return c.nextSample }

// LastSample returns the cycle of the previous window boundary (the
// measurement start before any window has closed). Drivers use it at
// measurement end to decide whether a trailing partial window remains to be
// flushed: cycles past LastSample have not been sampled yet. The value is
// exact across rebinning, because CloseWindow reschedules nextSample after
// any width change.
func (c *Collector) LastSample() int64 { return c.nextSample - c.windowCycles }

// SampleLink feeds one channel's cumulative busy counter at a window
// boundary. The collector differences it against the previous boundary
// itself.
func (c *Collector) SampleLink(ch int, busyTotal int64) {
	delta := busyTotal - c.busyPrev[ch]
	c.busyPrev[ch] = busyTotal
	c.busySeries = append(c.busySeries, uint32(delta))
	if f := float64(delta) / float64(c.windowCycles); f > c.peakBusyFrac[ch] {
		c.peakBusyFrac[ch] = f
	}
}

// SampleSwitchOcc feeds one switch's summed input-buffer occupancy (flits
// across all its input ports) at a window boundary.
func (c *Collector) SampleSwitchOcc(sw int, occFlits int) {
	c.occSum[sw] += int64(occFlits)
	if int32(occFlits) > c.occPeak[sw] {
		c.occPeak[sw] = int32(occFlits)
	}
}

// SampleHostPool feeds one host's in-transit-buffer pool occupancy in bytes
// at a window boundary.
func (c *Collector) SampleHostPool(host, poolBytes int) {
	c.poolSum[host] += int64(poolBytes)
	if int32(poolBytes) > c.poolPeak[host] {
		c.poolPeak[host] = int32(poolBytes)
	}
}

// PrimeTraffic sets the traffic baseline at measurement start, so the first
// window's deltas exclude whatever was delivered or dropped during warmup.
// Call it alongside Start.
func (c *Collector) PrimeTraffic(deliveredTotal, droppedTotal, retransmitsTotal int64) {
	c.delivPrev, c.dropPrev, c.retransPrev = deliveredTotal, droppedTotal, retransmitsTotal
}

// SampleTraffic feeds the network-wide cumulative delivery, drop, and
// retransmission counters at a window boundary; the collector differences
// them against the previous boundary itself. Call once per window, before
// CloseWindow.
func (c *Collector) SampleTraffic(deliveredTotal, droppedTotal, retransmitsTotal int64) {
	c.delivSeries = append(c.delivSeries, uint32(deliveredTotal-c.delivPrev))
	c.dropSeries = append(c.dropSeries, uint32(droppedTotal-c.dropPrev))
	c.retransSeries = append(c.retransSeries, uint32(retransmitsTotal-c.retransPrev))
	c.delivPrev, c.dropPrev, c.retransPrev = deliveredTotal, droppedTotal, retransmitsTotal
}

// CloseWindow completes one window after every channel/switch/host has been
// sampled, scheduling the next boundary and rebinning the series if it hit
// the retention bound.
func (c *Collector) CloseWindow(cycle int64) {
	c.windows++
	c.samples++
	if c.numVCs > 0 && len(c.vcOccSeries) == c.windows*c.numVCs {
		c.vcCount = append(c.vcCount, 1)
	}
	if c.windows >= c.maxWindows {
		c.rebin()
	}
	// Schedule after any rebin so the next window spans the width its
	// utilization will be divided by.
	c.nextSample = cycle + c.windowCycles
}

// rebin halves the series resolution: adjacent windows merge pairwise and
// the window width doubles, keeping memory bounded on long runs. An odd
// window count leaves a trailing window with no partner; it is carried
// whole into the last slot of every series (its busy-cycle mass and its
// sample count survive exactly) rather than halved or dropped, so totals
// reconcile across rebinning no matter the series length. The carried
// window then spans half the new width — the same convention as the
// trailing partial window Finalize flushes at measurement end.
func (c *Collector) rebin() {
	half := c.windows / 2
	odd := c.windows%2 == 1
	newW := half
	if odd {
		newW++
	}
	for w := 0; w < half; w++ {
		a := c.busySeries[(2*w)*c.channels : (2*w+1)*c.channels]
		b := c.busySeries[(2*w+1)*c.channels : (2*w+2)*c.channels]
		dst := c.busySeries[w*c.channels : (w+1)*c.channels]
		for i := range dst {
			dst[i] = a[i] + b[i]
		}
	}
	if odd {
		copy(c.busySeries[half*c.channels:(half+1)*c.channels],
			c.busySeries[(2*half)*c.channels:(2*half+1)*c.channels])
	}
	c.busySeries = c.busySeries[:newW*c.channels]
	for _, series := range []*[]uint32{&c.delivSeries, &c.dropSeries, &c.retransSeries} {
		s := *series
		if len(s) < c.windows {
			continue // driver does not feed SampleTraffic
		}
		for w := 0; w < half; w++ {
			s[w] = s[2*w] + s[2*w+1]
		}
		if odd {
			s[half] = s[2*half]
		}
		*series = s[:newW]
	}
	if c.numVCs > 0 && len(c.vcOccSeries) >= c.windows*c.numVCs && len(c.vcCount) >= c.windows {
		for w := 0; w < half; w++ {
			a := c.vcOccSeries[(2*w)*c.numVCs : (2*w+1)*c.numVCs]
			b := c.vcOccSeries[(2*w+1)*c.numVCs : (2*w+2)*c.numVCs]
			dst := c.vcOccSeries[w*c.numVCs : (w+1)*c.numVCs]
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
			c.vcCount[w] = c.vcCount[2*w] + c.vcCount[2*w+1]
		}
		if odd {
			copy(c.vcOccSeries[half*c.numVCs:(half+1)*c.numVCs],
				c.vcOccSeries[(2*half)*c.numVCs:(2*half+1)*c.numVCs])
			c.vcCount[half] = c.vcCount[2*half]
		}
		c.vcOccSeries = c.vcOccSeries[:newW*c.numVCs]
		c.vcCount = c.vcCount[:newW]
	}
	c.windows = newW
	c.windowCycles *= 2
}

// Eject counts one in-transit ejection at a host (the packet is being
// received into the host's ITB pool for later re-injection).
func (c *Collector) Eject(host int) { c.ejects[host]++ }

// Reinject counts one in-transit re-injection start at a host.
func (c *Collector) Reinject(host int) { c.reinjects[host]++ }

// BackpressureStall counts one cycle in which a host's generation process
// was due to inject but stalled because its source queue was full — the
// network pushing back beyond saturation.
func (c *Collector) BackpressureStall(host int) { c.backpressure[host]++ }

// Finalize freezes the collector into an immutable Metrics. measuredCycles
// is the length of the measurement period; ends maps a channel to its
// (from, to) switch pair; totals reports each channel's final cumulative
// busy and flow-control-stopped cycle counts (so whole-run fractions cover
// the tail beyond the last complete window); cycleNs converts cycles to
// wall time.
func (c *Collector) Finalize(measuredCycles int64, cycleNs float64, ends func(ch int) (from, to int), totals func(ch int) (busy, stopped int64)) *Metrics {
	m := &Metrics{
		SchemaVersion:  SchemaVersion,
		CycleNs:        cycleNs,
		WindowCycles:   c.windowCycles,
		Windows:        c.windows,
		MeasuredCycles: measuredCycles,
		Replicas:       1,
	}
	m.Links = make([]LinkMetrics, c.channels)
	for ch := 0; ch < c.channels; ch++ {
		lm := &m.Links[ch]
		lm.Channel = ch
		lm.From, lm.To = ends(ch)
		busy, stopped := totals(ch)
		if measuredCycles > 0 {
			lm.BusyFrac = float64(busy) / float64(measuredCycles)
			lm.StoppedFrac = float64(stopped) / float64(measuredCycles)
		}
		lm.PeakWindowFrac = c.peakBusyFrac[ch]
		if c.windows > 0 {
			lm.Window = make([]float64, c.windows)
			for w := 0; w < c.windows; w++ {
				lm.Window[w] = float64(c.busySeries[w*c.channels+ch]) / float64(c.windowCycles)
			}
		}
	}
	m.Switches = make([]SwitchMetrics, c.switches)
	for sw := range m.Switches {
		sm := &m.Switches[sw]
		sm.Switch = sw
		if c.samples > 0 {
			sm.MeanBufFlits = float64(c.occSum[sw]) / float64(c.samples)
		}
		sm.PeakBufFlits = int(c.occPeak[sw])
	}
	m.Hosts = make([]HostMetrics, c.hosts)
	for h := range m.Hosts {
		hm := &m.Hosts[h]
		hm.Host = h
		hm.Ejects = c.ejects[h]
		hm.Reinjects = c.reinjects[h]
		if c.samples > 0 {
			hm.MeanPoolBytes = float64(c.poolSum[h]) / float64(c.samples)
		}
		hm.PeakPoolBytes = int(c.poolPeak[h])
		hm.BackpressureCycles = c.backpressure[h]
	}
	if c.numVCs > 0 {
		m.VCs = make([]VCMetrics, c.numVCs)
		for v := range m.VCs {
			vm := &m.VCs[v]
			vm.VC = v
			if c.samples > 0 {
				vm.MeanBufFlits = float64(c.vcOccSum[v]) / float64(c.samples)
			}
			vm.PeakBufFlits = int(c.vcOccPeak[v])
			if c.windows > 0 && len(c.vcOccSeries) == c.windows*c.numVCs && len(c.vcCount) == c.windows {
				vm.Window = make([]float64, c.windows)
				for w := range vm.Window {
					vm.Window[w] = float64(c.vcOccSeries[w*c.numVCs+v]) / float64(c.vcCount[w])
				}
			}
		}
	}
	if len(c.delivSeries) == c.windows && c.windows > 0 {
		t := &TrafficMetrics{
			Delivered:   make([]int64, c.windows),
			Dropped:     make([]int64, c.windows),
			Retransmits: make([]int64, c.windows),
		}
		for w := 0; w < c.windows; w++ {
			t.Delivered[w] = int64(c.delivSeries[w])
			t.Dropped[w] = int64(c.dropSeries[w])
			t.Retransmits[w] = int64(c.retransSeries[w])
		}
		m.Traffic = t
	}
	return m
}

// SchemaVersion identifies the telemetry schema emitted by this package;
// bump it on any incompatible field change (see docs/METRICS.md).
const SchemaVersion = 1

// Metrics is one run's (or one aggregated cell's) frozen telemetry. All
// fractions are of measurement-window cycles; all byte/flit quantities are
// in the units their names state; all times are in ns via CycleNs. See
// docs/METRICS.md for the full schema.
type Metrics struct {
	// SchemaVersion is the telemetry schema version (currently 1).
	SchemaVersion int `json:"schema_version"`
	// CycleNs is the wall-clock duration of one simulator cycle in ns.
	CycleNs float64 `json:"cycle_ns"`
	// WindowCycles is the (post-rebinning) sampling window width in cycles.
	WindowCycles int64 `json:"window_cycles"`
	// Windows is the number of complete windows in the per-link series.
	Windows int `json:"windows"`
	// MeasuredCycles is the measurement period length in cycles.
	MeasuredCycles int64 `json:"measured_cycles"`
	// Replicas is how many runs were merged into this Metrics (1 for a
	// single run). Counts are totals across replicas; fractions and means
	// are averages; peaks are maxima.
	Replicas int `json:"replicas"`

	Links    []LinkMetrics   `json:"links"`
	Switches []SwitchMetrics `json:"switches"`
	Hosts    []HostMetrics   `json:"hosts"`

	// VCs is the per-virtual-channel occupancy telemetry of a run under VC
	// flow control (nil otherwise — stop & go runs have no lanes).
	VCs []VCMetrics `json:"vcs,omitempty"`

	// Traffic is the network-wide per-window delivery/drop/retransmission
	// series (nil when the driver does not feed SampleTraffic, or on
	// aggregated metrics whose replicas had different window shapes). It is
	// the series that makes a fault's goodput dip and recovery visible.
	Traffic *TrafficMetrics `json:"traffic,omitempty"`

	// Latency is the histogram of total message latency (generation to
	// last-flit delivery); NetLatency measures from first-flit injection.
	Latency    *Histogram `json:"-"`
	NetLatency *Histogram `json:"-"`
}

// ChannelCriticality extracts the per-channel criticality vector the route
// optimizer (internal/optimize) consumes: BusyFrac indexed by topology
// channel ID. Channels absent from the telemetry (never sampled) read 0.
// It is the bridge from a profiling run's telemetry file back into an
// optimization pass, the measured counterpart of the optimizer's static
// load estimate.
func (m *Metrics) ChannelCriticality() []float64 {
	maxCh := -1
	for i := range m.Links {
		if m.Links[i].Channel > maxCh {
			maxCh = m.Links[i].Channel
		}
	}
	out := make([]float64, maxCh+1)
	for i := range m.Links {
		out[m.Links[i].Channel] = m.Links[i].BusyFrac
	}
	return out
}

// LinkMetrics is one directed switch-to-switch channel's telemetry.
type LinkMetrics struct {
	// Channel is the topology channel ID; From and To its endpoint switches.
	Channel int `json:"channel"`
	From    int `json:"from"`
	To      int `json:"to"`
	// BusyFrac is the fraction of measurement cycles the channel carried a
	// flit; StoppedFrac the fraction it sat idle under stop & go flow
	// control while a packet wanted to advance.
	BusyFrac    float64 `json:"busy_frac"`
	StoppedFrac float64 `json:"stopped_frac"`
	// PeakWindowFrac is the highest single-window utilization observed (at
	// the window resolution in effect when the peak occurred).
	PeakWindowFrac float64 `json:"peak_window_frac"`
	// Window is the per-window utilization series (nil on aggregated
	// metrics whose replicas had different window shapes).
	Window []float64 `json:"window,omitempty"`
}

// TrafficMetrics is the network-wide per-window traffic series: messages
// delivered, packets dropped by fault events, and source retransmissions in
// each window. All three slices have Metrics.Windows elements; counts are
// totals across replicas on aggregated metrics.
type TrafficMetrics struct {
	Delivered   []int64 `json:"delivered"`
	Dropped     []int64 `json:"dropped"`
	Retransmits []int64 `json:"retransmits"`
}

// VCMetrics is one virtual channel's occupancy telemetry: how many flits
// the lane held, summed over every switch input port in the network, sampled
// at window boundaries. Comparing lanes shows how the layered routing loads
// them — lane 0 (the escape layer) filling while higher lanes idle means the
// layering is falling back too often.
type VCMetrics struct {
	VC int `json:"vc"`
	// MeanBufFlits is the mean network-wide buffered flit count across
	// boundary samples; PeakBufFlits the largest sampled value.
	MeanBufFlits float64 `json:"mean_buf_flits"`
	PeakBufFlits int     `json:"peak_buf_flits"`
	// Window is the per-window mean occupancy series (nil on aggregated
	// metrics whose replicas had different window shapes).
	Window []float64 `json:"window,omitempty"`
}

// SwitchMetrics is one switch's input-buffer occupancy telemetry, sampled
// at window boundaries over all the switch's input ports.
type SwitchMetrics struct {
	Switch int `json:"switch"`
	// MeanBufFlits is the mean summed occupancy across boundary samples;
	// PeakBufFlits the largest sampled value.
	MeanBufFlits float64 `json:"mean_buf_flits"`
	PeakBufFlits int     `json:"peak_buf_flits"`
}

// HostMetrics is one host NIC's ITB and injection telemetry.
type HostMetrics struct {
	Host int `json:"host"`
	// Ejects and Reinjects count in-transit packets ejected into and
	// re-injected from this host's ITB pool during measurement.
	Ejects    int64 `json:"ejects"`
	Reinjects int64 `json:"reinjects"`
	// MeanPoolBytes and PeakPoolBytes describe the sampled ITB pool
	// occupancy.
	MeanPoolBytes float64 `json:"mean_pool_bytes"`
	PeakPoolBytes int     `json:"peak_pool_bytes"`
	// BackpressureCycles counts cycles the host's generation process was
	// due but stalled on a full source queue.
	BackpressureCycles int64 `json:"backpressure_cycles"`
}

// Aggregate merges per-replica metrics of the same experimental cell into
// one Metrics: histograms and event counts are summed (totals across
// replicas), fractions and means are averaged, peaks are maxima, and the
// per-link window series is averaged element-wise when every replica shares
// the same window shape (dropped otherwise). Inputs are not modified; nil
// entries are skipped; an empty input yields nil.
func Aggregate(ms []*Metrics) *Metrics {
	var live []*Metrics
	for _, m := range ms {
		if m != nil {
			live = append(live, m)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	first := live[0]
	out := &Metrics{
		SchemaVersion:  SchemaVersion,
		CycleNs:        first.CycleNs,
		WindowCycles:   first.WindowCycles,
		Windows:        first.Windows,
		MeasuredCycles: first.MeasuredCycles,
		Links:          make([]LinkMetrics, len(first.Links)),
		Switches:       make([]SwitchMetrics, len(first.Switches)),
		Hosts:          make([]HostMetrics, len(first.Hosts)),
	}
	sameShape := true
	for _, m := range live {
		out.Replicas += m.Replicas
		if m.WindowCycles != first.WindowCycles || m.Windows != first.Windows {
			sameShape = false
		}
		if m.MeasuredCycles > out.MeasuredCycles {
			out.MeasuredCycles = m.MeasuredCycles
		}
	}
	n := float64(len(live))
	for i := range out.Links {
		lm := &out.Links[i]
		lm.Channel = first.Links[i].Channel
		lm.From = first.Links[i].From
		lm.To = first.Links[i].To
		if sameShape && first.Windows > 0 {
			lm.Window = make([]float64, first.Windows)
		}
		for _, m := range live {
			lm.BusyFrac += m.Links[i].BusyFrac / n
			lm.StoppedFrac += m.Links[i].StoppedFrac / n
			if m.Links[i].PeakWindowFrac > lm.PeakWindowFrac {
				lm.PeakWindowFrac = m.Links[i].PeakWindowFrac
			}
			if lm.Window != nil {
				for w := range lm.Window {
					lm.Window[w] += m.Links[i].Window[w] / n
				}
			}
		}
	}
	for i := range out.Switches {
		sm := &out.Switches[i]
		sm.Switch = first.Switches[i].Switch
		for _, m := range live {
			sm.MeanBufFlits += m.Switches[i].MeanBufFlits / n
			if m.Switches[i].PeakBufFlits > sm.PeakBufFlits {
				sm.PeakBufFlits = m.Switches[i].PeakBufFlits
			}
		}
	}
	for i := range out.Hosts {
		hm := &out.Hosts[i]
		hm.Host = first.Hosts[i].Host
		for _, m := range live {
			hm.Ejects += m.Hosts[i].Ejects
			hm.Reinjects += m.Hosts[i].Reinjects
			hm.MeanPoolBytes += m.Hosts[i].MeanPoolBytes / n
			if m.Hosts[i].PeakPoolBytes > hm.PeakPoolBytes {
				hm.PeakPoolBytes = m.Hosts[i].PeakPoolBytes
			}
			hm.BackpressureCycles += m.Hosts[i].BackpressureCycles
		}
	}
	vcShape := len(first.VCs) > 0
	for _, m := range live {
		if len(m.VCs) != len(first.VCs) {
			vcShape = false
		}
	}
	if vcShape {
		out.VCs = make([]VCMetrics, len(first.VCs))
		for i := range out.VCs {
			vm := &out.VCs[i]
			vm.VC = first.VCs[i].VC
			if sameShape && first.Windows > 0 {
				vm.Window = make([]float64, first.Windows)
			}
			for _, m := range live {
				vm.MeanBufFlits += m.VCs[i].MeanBufFlits / n
				if m.VCs[i].PeakBufFlits > vm.PeakBufFlits {
					vm.PeakBufFlits = m.VCs[i].PeakBufFlits
				}
				if vm.Window != nil {
					for w := range vm.Window {
						vm.Window[w] += m.VCs[i].Window[w] / n
					}
				}
			}
		}
	}
	trafficShape := sameShape
	for _, m := range live {
		if m.Traffic == nil {
			trafficShape = false
		}
	}
	if trafficShape && first.Windows > 0 {
		t := &TrafficMetrics{
			Delivered:   make([]int64, first.Windows),
			Dropped:     make([]int64, first.Windows),
			Retransmits: make([]int64, first.Windows),
		}
		for _, m := range live {
			for w := 0; w < first.Windows; w++ {
				t.Delivered[w] += m.Traffic.Delivered[w]
				t.Dropped[w] += m.Traffic.Dropped[w]
				t.Retransmits[w] += m.Traffic.Retransmits[w]
			}
		}
		out.Traffic = t
	}
	for _, m := range live {
		if m.Latency != nil {
			if out.Latency == nil {
				out.Latency = NewHistogram()
			}
			out.Latency.Merge(m.Latency)
		}
		if m.NetLatency != nil {
			if out.NetLatency == nil {
				out.NetLatency = NewHistogram()
			}
			out.NetLatency.Merge(m.NetLatency)
		}
	}
	return out
}
