package metrics

import "testing"

// sumU32 totals one series.
func sumU32(s []uint32) uint64 {
	var t uint64
	for _, v := range s {
		t += uint64(v)
	}
	return t
}

// feedWindow drives one complete synthetic window: every channel carries
// `busyPerWin` more busy cycles than at the last boundary, traffic counters
// advance by fixed deltas, and each VC lane reports a point sample.
func feedWindow(c *Collector, w int, busyPerWin int64) {
	cycle := c.NextSample()
	for ch := 0; ch < c.channels; ch++ {
		c.SampleLink(ch, c.busyPrev[ch]+busyPerWin+int64(ch))
	}
	for sw := 0; sw < c.switches; sw++ {
		c.SampleSwitchOcc(sw, 1)
	}
	for h := 0; h < c.hosts; h++ {
		c.SampleHostPool(h, 1)
	}
	c.SampleTraffic(c.delivPrev+int64(3+w), c.dropPrev+1, c.retransPrev+2)
	for vc := 0; vc < c.numVCs; vc++ {
		c.SampleVCOcc(vc, 5+w+vc)
	}
	c.CloseWindow(cycle)
}

// TestRebinOddTrailingWindowMassConserved is the regression test for the
// odd-trailing-window rebinning bug: merging windows pairwise used to
// truncate the series at windows/2, silently discarding the last window's
// busy-cycle mass, traffic counts, VC occupancy sums, and sample counts
// whenever the window count was odd. The fix carries the unpaired window
// whole. The test drives an odd number of windows, rebins directly (the
// CloseWindow trigger only fires at the even maxWindows bound, so the odd
// case is reachable through restored or externally driven collectors), and
// requires every series total to survive exactly.
func TestRebinOddTrailingWindowMassConserved(t *testing.T) {
	c := NewCollector(Config{WindowCycles: 64, MaxWindows: 512}, 3, 2, 2)
	c.EnableVCs(2)
	c.Start(0)
	c.PrimeTraffic(100, 10, 20)
	const windows = 5
	for w := 0; w < windows; w++ {
		feedWindow(c, w, 10)
	}
	if c.windows != windows {
		t.Fatalf("drove %d windows, collector has %d", windows, c.windows)
	}

	busyBefore := sumU32(c.busySeries)
	delivBefore := sumU32(c.delivSeries)
	dropBefore := sumU32(c.dropSeries)
	retransBefore := sumU32(c.retransSeries)
	vcBefore := sumU32(c.vcOccSeries)
	countBefore := sumU32(c.vcCount)
	lastBusy := append([]uint32(nil), c.busySeries[(windows-1)*c.channels:]...)
	widthBefore := c.windowCycles

	c.rebin()

	if want := windows/2 + 1; c.windows != want {
		t.Fatalf("rebin of %d windows left %d, want %d (pairs + carried trailing window)", windows, c.windows, want)
	}
	if c.windowCycles != 2*widthBefore {
		t.Errorf("window width %d after rebin, want %d", c.windowCycles, 2*widthBefore)
	}
	if got := sumU32(c.busySeries); got != busyBefore {
		t.Errorf("busy-cycle mass %d after rebin, want %d", got, busyBefore)
	}
	if got := sumU32(c.delivSeries); got != delivBefore {
		t.Errorf("delivered total %d after rebin, want %d", got, delivBefore)
	}
	if got := sumU32(c.dropSeries); got != dropBefore {
		t.Errorf("dropped total %d after rebin, want %d", got, dropBefore)
	}
	if got := sumU32(c.retransSeries); got != retransBefore {
		t.Errorf("retransmit total %d after rebin, want %d", got, retransBefore)
	}
	if got := sumU32(c.vcOccSeries); got != vcBefore {
		t.Errorf("VC occupancy sample mass %d after rebin, want %d", got, vcBefore)
	}
	if got := sumU32(c.vcCount); got != countBefore {
		t.Errorf("VC sample count %d after rebin, want %d", got, countBefore)
	}
	// The carried window is the old trailing window verbatim, not a halved
	// or merged copy.
	tail := c.busySeries[(c.windows-1)*c.channels:]
	for i := range tail {
		if tail[i] != lastBusy[i] {
			t.Fatalf("carried trailing window channel %d = %d, want %d", i, tail[i], lastBusy[i])
		}
	}

	// A second rebin pairs the carried window with its left neighbour and
	// the totals still reconcile (3 windows -> 2).
	c.rebin()
	if c.windows != 2 {
		t.Fatalf("second rebin left %d windows, want 2", c.windows)
	}
	if got := sumU32(c.busySeries); got != busyBefore {
		t.Errorf("busy-cycle mass %d after second rebin, want %d", got, busyBefore)
	}
	if got := sumU32(c.vcCount); got != countBefore {
		t.Errorf("VC sample count %d after second rebin, want %d", got, countBefore)
	}
}

// TestRebinEvenUnchanged pins that the even-count path — the only one the
// CloseWindow retention trigger exercises — still halves the series shape
// exactly as before the odd-window fix.
func TestRebinEvenUnchanged(t *testing.T) {
	c := NewCollector(Config{WindowCycles: 64, MaxWindows: 512}, 2, 1, 1)
	c.Start(0)
	c.PrimeTraffic(0, 0, 0)
	for w := 0; w < 6; w++ {
		feedWindow(c, w, 7)
	}
	busyBefore := sumU32(c.busySeries)
	c.rebin()
	if c.windows != 3 {
		t.Fatalf("rebin of 6 windows left %d, want 3", c.windows)
	}
	if got := sumU32(c.busySeries); got != busyBefore {
		t.Errorf("busy-cycle mass %d after rebin, want %d", got, busyBefore)
	}
	if got, want := len(c.busySeries), 3*c.channels; got != want {
		t.Errorf("busy series length %d, want %d", got, want)
	}
}
