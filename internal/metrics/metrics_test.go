package metrics

import (
	"bytes"
	"strings"
	"testing"
)

// driveCollector runs a synthetic measurement period: `channels` links where
// channel ch carries ch flits per cycle... simplified: busy counter grows by
// ch*windowCycles per window so WindowFrac is exactly float64(ch scaled).
func driveCollector(t *testing.T, cfg Config, windows int) (*Collector, *Metrics) {
	t.Helper()
	const channels, switches, hosts = 3, 2, 2
	c := NewCollector(cfg, channels, switches, hosts)
	c.Start(100)
	// Warmup totals predate the measurement window; priming keeps them out
	// of the first window's deltas.
	delivered, dropped, retrans := int64(1000), int64(5), int64(2)
	c.PrimeTraffic(delivered, dropped, retrans)
	busy := make([]int64, channels)
	cycle := int64(100)
	for w := 0; w < windows; w++ {
		cycle = c.NextSample()
		for ch := 0; ch < channels; ch++ {
			busy[ch] += int64(ch) * c.windowCycles / 4 // utilization ch/4
			c.SampleLink(ch, busy[ch])
		}
		c.SampleSwitchOcc(0, 5)
		c.SampleSwitchOcc(1, w) // varies: peak = windows-1
		c.SampleHostPool(0, 1024)
		c.SampleHostPool(1, 0)
		delivered += 10
		dropped += int64(w)
		retrans++
		c.SampleTraffic(delivered, dropped, retrans)
		c.CloseWindow(cycle)
	}
	c.Eject(1)
	c.Eject(1)
	c.Reinject(1)
	c.BackpressureStall(0)
	measured := cycle - 100
	m := c.Finalize(measured, 6.25,
		func(ch int) (int, int) { return ch, ch + 1 },
		func(ch int) (int64, int64) { return busy[ch], int64(ch) })
	return c, m
}

func TestCollectorWindowsAndFinalize(t *testing.T) {
	_, m := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 10)
	if m.Windows != 10 || m.WindowCycles != 64 {
		t.Fatalf("got %d windows of %d cycles, want 10 of 64", m.Windows, m.WindowCycles)
	}
	if m.MeasuredCycles != 640 {
		t.Fatalf("measured %d cycles, want 640", m.MeasuredCycles)
	}
	if len(m.Links) != 3 || len(m.Switches) != 2 || len(m.Hosts) != 2 {
		t.Fatalf("unexpected shapes: %d links %d switches %d hosts",
			len(m.Links), len(m.Switches), len(m.Hosts))
	}
	for ch, lm := range m.Links {
		want := float64(ch) / 4
		if lm.BusyFrac != want {
			t.Errorf("link %d BusyFrac = %g, want %g", ch, lm.BusyFrac, want)
		}
		if lm.PeakWindowFrac != want {
			t.Errorf("link %d PeakWindowFrac = %g, want %g", ch, lm.PeakWindowFrac, want)
		}
		if len(lm.Window) != 10 {
			t.Fatalf("link %d series length %d", ch, len(lm.Window))
		}
		for w, frac := range lm.Window {
			if frac != want {
				t.Errorf("link %d window %d = %g, want %g", ch, w, frac, want)
			}
		}
		if lm.From != ch || lm.To != ch+1 {
			t.Errorf("link %d endpoints (%d,%d)", ch, lm.From, lm.To)
		}
	}
	if m.Switches[0].MeanBufFlits != 5 || m.Switches[0].PeakBufFlits != 5 {
		t.Errorf("switch 0 occupancy %+v", m.Switches[0])
	}
	if m.Switches[1].PeakBufFlits != 9 {
		t.Errorf("switch 1 peak %d, want 9", m.Switches[1].PeakBufFlits)
	}
	h := m.Hosts[1]
	if h.Ejects != 2 || h.Reinjects != 1 || h.MeanPoolBytes != 0 {
		t.Errorf("host 1 metrics %+v", h)
	}
	if m.Hosts[0].BackpressureCycles != 1 || m.Hosts[0].MeanPoolBytes != 1024 {
		t.Errorf("host 0 metrics %+v", m.Hosts[0])
	}
}

func TestTrafficSeries(t *testing.T) {
	_, m := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 10)
	tr := m.Traffic
	if tr == nil {
		t.Fatal("no traffic series collected")
	}
	if len(tr.Delivered) != 10 || len(tr.Dropped) != 10 || len(tr.Retransmits) != 10 {
		t.Fatalf("series lengths %d/%d/%d, want 10", len(tr.Delivered), len(tr.Dropped), len(tr.Retransmits))
	}
	for w := 0; w < 10; w++ {
		if tr.Delivered[w] != 10 {
			t.Errorf("window %d delivered %d, want 10 (priming leaked warmup?)", w, tr.Delivered[w])
		}
		if tr.Dropped[w] != int64(w) {
			t.Errorf("window %d dropped %d, want %d", w, tr.Dropped[w], w)
		}
		if tr.Retransmits[w] != 1 {
			t.Errorf("window %d retransmits %d, want 1", w, tr.Retransmits[w])
		}
	}

	// Rebinning merges traffic windows pairwise, preserving totals.
	_, r := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 4}, 16)
	if r.Traffic == nil || len(r.Traffic.Delivered) != r.Windows {
		t.Fatalf("rebinned traffic series missing or misshapen: %+v", r.Traffic)
	}
	var total int64
	for _, d := range r.Traffic.Delivered {
		total += d
	}
	if total != 160 {
		t.Errorf("rebinned delivered total %d, want 160", total)
	}

	// Aggregation sums counts across replicas of the same shape.
	_, a := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 10)
	_, b := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 10)
	g := Aggregate([]*Metrics{a, b})
	if g.Traffic == nil {
		t.Fatal("aggregation dropped the traffic series of same-shape replicas")
	}
	if g.Traffic.Delivered[0] != 20 || g.Traffic.Retransmits[0] != 2 {
		t.Errorf("aggregated traffic window 0: %+v", g.Traffic)
	}
	if a.Traffic.Delivered[0] != 10 {
		t.Error("Aggregate modified its inputs")
	}
}

func TestCollectorRebin(t *testing.T) {
	// MaxWindows 4: every time the series fills it rebins to 2 windows of
	// double width, so 16 sampled windows starting at 64 cycles end as
	// 2 windows of 8192 cycles (seven doublings), spanning the whole run.
	_, m := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 4}, 16)
	if m.Windows != 2 || m.WindowCycles != 8192 {
		t.Fatalf("got %d windows of %d cycles, want 2 of 8192", m.Windows, m.WindowCycles)
	}
	// Constant per-window utilization survives rebinning unchanged, and the
	// peak keeps its value from the original resolution.
	lm := m.Links[2]
	want := 0.5
	for w, frac := range lm.Window {
		if frac != want {
			t.Errorf("rebinned window %d = %g, want %g", w, frac, want)
		}
	}
	if lm.PeakWindowFrac != want {
		t.Errorf("peak after rebin = %g, want %g", lm.PeakWindowFrac, want)
	}
}

func TestFinalizeIncludesTail(t *testing.T) {
	// Totals passed to Finalize cover flits carried after the last complete
	// window; BusyFrac must use them, not the last boundary snapshot.
	c := NewCollector(Config{WindowCycles: 100, MaxWindows: 8}, 1, 0, 0)
	c.Start(0)
	c.SampleLink(0, 50)
	c.CloseWindow(100)
	// 30 more cycles, 30 more busy cycles, no window boundary reached.
	m := c.Finalize(130, 6.25,
		func(int) (int, int) { return 0, 1 },
		func(int) (int64, int64) { return 80, 0 })
	want := 80.0 / 130
	if m.Links[0].BusyFrac != want {
		t.Errorf("BusyFrac = %g, want %g (tail dropped?)", m.Links[0].BusyFrac, want)
	}
}

func TestAggregate(t *testing.T) {
	_, a := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 10)
	_, b := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 10)
	a.Latency = NewHistogram()
	a.Latency.Record(100)
	b.Latency = NewHistogram()
	b.Latency.Record(300)

	g := Aggregate([]*Metrics{a, nil, b})
	if g.Replicas != 2 {
		t.Fatalf("Replicas = %d, want 2", g.Replicas)
	}
	// Identical replicas: averages equal the per-replica values, counts double.
	if g.Links[2].BusyFrac != a.Links[2].BusyFrac {
		t.Errorf("aggregated BusyFrac %g, want %g", g.Links[2].BusyFrac, a.Links[2].BusyFrac)
	}
	if len(g.Links[2].Window) != 10 || g.Links[2].Window[0] != a.Links[2].Window[0] {
		t.Errorf("aggregated window series %v", g.Links[2].Window)
	}
	if g.Hosts[1].Ejects != 4 || g.Hosts[1].Reinjects != 2 {
		t.Errorf("aggregated host counts %+v", g.Hosts[1])
	}
	if g.Latency.Count() != 2 || g.Latency.Sum() != 400 {
		t.Errorf("aggregated latency histogram count %d sum %g", g.Latency.Count(), g.Latency.Sum())
	}
	// Inputs untouched.
	if a.Latency.Count() != 1 || a.Hosts[1].Ejects != 2 {
		t.Error("Aggregate modified its inputs")
	}

	// Mismatched window shapes: series dropped, scalars still averaged.
	_, c := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 4}, 16)
	g2 := Aggregate([]*Metrics{a, c})
	if g2.Links[2].Window != nil {
		t.Error("mismatched shapes should drop the window series")
	}
	if g2.Links[2].BusyFrac != a.Links[2].BusyFrac {
		t.Errorf("scalar average wrong under shape mismatch: %g", g2.Links[2].BusyFrac)
	}

	if Aggregate(nil) != nil || Aggregate([]*Metrics{nil}) != nil {
		t.Error("empty aggregation should be nil")
	}
	if Aggregate([]*Metrics{a}) != a {
		t.Error("single-input aggregation should return the input")
	}
}

func TestExportDeterministic(t *testing.T) {
	_, m := driveCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 4)
	m.Latency = NewHistogram()
	m.NetLatency = NewHistogram()
	for i := 1; i <= 50; i++ {
		m.Latency.Record(float64(i * 13))
		m.NetLatency.Record(float64(i * 11))
	}
	pts := []ExportPoint{{Label: "t", Scheme: "updown", Pattern: "uniform", Load: 0.02, Metrics: m}}
	var j1, j2, c1, c2 bytes.Buffer
	if err := WriteJSON(&j1, pts); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&j2, pts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&c1, pts); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&c2, pts); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1.Bytes(), j2.Bytes()) {
		t.Error("JSON export not byte-identical across calls")
	}
	if !bytes.Equal(c1.Bytes(), c2.Bytes()) {
		t.Error("CSV export not byte-identical across calls")
	}
	if !strings.Contains(j1.String(), "\"schema_version\": 1") {
		t.Error("JSON export missing schema_version")
	}
	head := strings.SplitN(c1.String(), "\n", 2)[0]
	if head != strings.Join(CSVHeader, ",") {
		t.Errorf("CSV header = %q", head)
	}
	for _, rec := range []string{"run,", "link,", "link_window,", "switch,", "host,", "traffic_window,", "latency,", "net_latency,", "latency_bucket,"} {
		if !strings.Contains(c1.String(), "\n"+rec) {
			t.Errorf("CSV export missing %q records", rec)
		}
	}
}

// driveVCCollector runs a synthetic VC measurement: lane v holds a constant
// 10*(v+1) flits network-wide at every boundary.
func driveVCCollector(t *testing.T, cfg Config, numVCs, windows int) *Metrics {
	t.Helper()
	c := NewCollector(cfg, 1, 1, 1)
	c.EnableVCs(numVCs)
	c.Start(0)
	var busy int64
	cycle := int64(0)
	for w := 0; w < windows; w++ {
		cycle = c.NextSample()
		busy += c.windowCycles / 2
		c.SampleLink(0, busy)
		c.SampleSwitchOcc(0, 0)
		c.SampleHostPool(0, 0)
		for v := 0; v < numVCs; v++ {
			c.SampleVCOcc(v, 10*(v+1))
		}
		c.CloseWindow(cycle)
	}
	return c.Finalize(cycle, 6.25,
		func(int) (int, int) { return 0, 1 },
		func(int) (int64, int64) { return busy, 0 })
}

func TestVCOccupancySeries(t *testing.T) {
	m := driveVCCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 3, 8)
	if len(m.VCs) != 3 {
		t.Fatalf("got %d VC entries, want 3", len(m.VCs))
	}
	for v, vm := range m.VCs {
		want := float64(10 * (v + 1))
		if vm.VC != v || vm.MeanBufFlits != want || vm.PeakBufFlits != int(want) {
			t.Errorf("lane %d: %+v, want mean/peak %g", v, vm, want)
		}
		if len(vm.Window) != 8 {
			t.Fatalf("lane %d: %d windows, want 8", v, len(vm.Window))
		}
		for w, got := range vm.Window {
			if got != want {
				t.Errorf("lane %d window %d = %g, want %g", v, w, got, want)
			}
		}
	}
}

func TestVCOccupancyRebin(t *testing.T) {
	// 16 windows into MaxWindows 4: repeated rebinning merges point samples;
	// a constant occupancy must survive the sample-sum/vcFactor division
	// unchanged.
	m := driveVCCollector(t, Config{WindowCycles: 64, MaxWindows: 4}, 2, 16)
	if m.Windows != 2 {
		t.Fatalf("got %d windows, want 2", m.Windows)
	}
	for v, vm := range m.VCs {
		want := float64(10 * (v + 1))
		for w, got := range vm.Window {
			if got != want {
				t.Errorf("lane %d rebinned window %d = %g, want %g", v, w, got, want)
			}
		}
	}
}

func TestVCOccupancyAggregate(t *testing.T) {
	a := driveVCCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 2, 4)
	b := driveVCCollector(t, Config{WindowCycles: 64, MaxWindows: 512}, 2, 4)
	g := Aggregate([]*Metrics{a, b})
	if len(g.VCs) != 2 {
		t.Fatalf("aggregated VC entries: %d, want 2", len(g.VCs))
	}
	if g.VCs[1].MeanBufFlits != 20 || g.VCs[1].PeakBufFlits != 20 {
		t.Errorf("aggregated lane 1: %+v", g.VCs[1])
	}
	if len(g.VCs[1].Window) != 4 || g.VCs[1].Window[0] != 20 {
		t.Errorf("aggregated lane 1 window: %v", g.VCs[1].Window)
	}
	// A stop & go replica (no VCs) mixed in drops the section.
	c := driveCollector2(t)
	if g2 := Aggregate([]*Metrics{a, c}); g2.VCs != nil {
		t.Error("mixed VC/non-VC aggregation should drop the VC section")
	}
}

// driveCollector2 is a minimal non-VC replica for the mixed-aggregation case.
func driveCollector2(t *testing.T) *Metrics {
	t.Helper()
	c := NewCollector(Config{WindowCycles: 64, MaxWindows: 512}, 1, 1, 1)
	c.Start(0)
	cycle := c.NextSample()
	c.SampleLink(0, 32)
	c.SampleSwitchOcc(0, 0)
	c.SampleHostPool(0, 0)
	c.CloseWindow(cycle)
	return c.Finalize(cycle, 6.25,
		func(int) (int, int) { return 0, 1 },
		func(int) (int64, int64) { return 32, 0 })
}
