package metrics

import "math"

// Histogram bucket layout. Buckets are logarithmic with subCount linear
// sub-buckets per power of two (HDR-histogram style): bucket 0 absorbs all
// samples below 1, and bucket 1+e*subCount+m covers
// [2^e*(1+m/subCount), 2^e*(1+(m+1)/subCount)). With 16 sub-buckets per
// octave the relative bucket width is at most 1/16 ≈ 6.3%, which is far
// below the run-to-run noise of any simulated latency.
const (
	subBits  = 4
	subCount = 1 << subBits // sub-buckets per power of two
	maxExp   = 62           // exponents above this collapse into the last bucket
	// NumBuckets is the fixed bucket count of every Histogram.
	NumBuckets = 1 + (maxExp+1)*subCount
)

// Histogram is a streaming log-bucketed histogram of non-negative samples
// (latencies in ns throughout this repository). Recording is O(1) with no
// allocation: the bucket index is derived from the sample's floating-point
// exponent and mantissa bits, so the hot path is a few shifts and one
// counter increment. Construct with NewHistogram (the zero value has no
// bucket storage). A Histogram is not safe for concurrent use.
type Histogram struct {
	counts []uint64

	count    uint64
	sum      float64
	min, max float64
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, NumBuckets)}
}

// bucketIndex maps a sample to its bucket. Negative values and NaN clamp
// into bucket 0 alongside everything below 1.
func bucketIndex(v float64) int {
	if !(v >= 1) {
		return 0
	}
	b := math.Float64bits(v)
	e := int(b>>52) - 1023 // v >= 1, so e >= 0 (and Inf clamps below)
	if e > maxExp {
		return NumBuckets - 1
	}
	sub := int(b >> (52 - subBits) & (subCount - 1))
	return 1 + e*subCount + sub
}

// BucketBounds returns the half-open interval [lo, hi) bucket i covers.
func BucketBounds(i int) (lo, hi float64) {
	if i <= 0 {
		return 0, 1
	}
	if i >= NumBuckets {
		i = NumBuckets - 1
	}
	i--
	e := i / subCount
	sub := i % subCount
	lo = math.Ldexp(1+float64(sub)/subCount, e)
	hi = math.Ldexp(1+float64(sub+1)/subCount, e)
	return lo, hi
}

// Record adds one sample.
func (h *Histogram) Record(v float64) {
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all recorded samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the exact sample mean (tracked outside the buckets), or 0
// for an empty histogram.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min returns the smallest recorded sample (exact), or 0 when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded sample (exact), or 0 when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1) of the
// recorded samples: the upper edge of the bucket holding the sample of
// rank ⌊q·(count−1)⌋, clamped into [Min, Max] so single-sample and
// narrow distributions report exact values. An empty histogram returns 0.
// The estimate is within one bucket width (≤ 6.3% relative error) of the
// true quantile, and is monotone in q.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.count-1)) // 0-based, matches sorted[i] indexing
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > rank {
			_, hi := BucketBounds(i)
			if hi > h.max {
				return h.max
			}
			if hi < h.min {
				return h.min
			}
			return hi
		}
	}
	return h.max // unreachable: cum ends at h.count > rank
}

// Merge adds another histogram's samples into h. Merging is exact for
// counts and bucket contents; min/max/sum merge exactly too.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// SetSum overrides the tracked sample sum. Merging per-shard histograms
// adds their float sums in shard order, which is not associative in floating
// point; a driver that tracks an exact (integer-derived) total can install
// it here so Mean and the exported moments are identical no matter how the
// samples were partitioned.
func (h *Histogram) SetSum(sum float64) { h.sum = sum }

// Clone returns an independent copy.
func (h *Histogram) Clone() *Histogram {
	c := *h
	c.counts = append([]uint64(nil), h.counts...)
	return &c
}

// Bucket is one non-empty histogram bucket in export form.
type Bucket struct {
	// Lo and Hi bound the bucket's half-open interval [Lo, Hi).
	Lo float64 `json:"lo_ns"`
	Hi float64 `json:"hi_ns"`
	// Count is the number of samples that fell inside the interval.
	Count uint64 `json:"count"`
}

// Buckets returns the non-empty buckets in ascending value order.
func (h *Histogram) Buckets() []Bucket {
	var out []Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := BucketBounds(i)
		out = append(out, Bucket{Lo: lo, Hi: hi, Count: c})
	}
	return out
}

// HistogramExport is the JSON form of a Histogram: exact summary moments
// plus the non-empty buckets. See docs/METRICS.md for field semantics.
type HistogramExport struct {
	Count   uint64   `json:"count"`
	MeanNs  float64  `json:"mean_ns"`
	MinNs   float64  `json:"min_ns"`
	MaxNs   float64  `json:"max_ns"`
	P50Ns   float64  `json:"p50_ns"`
	P95Ns   float64  `json:"p95_ns"`
	P99Ns   float64  `json:"p99_ns"`
	Buckets []Bucket `json:"buckets"`
}

// Export renders the histogram for serialization.
func (h *Histogram) Export() HistogramExport {
	return HistogramExport{
		Count:   h.count,
		MeanNs:  h.Mean(),
		MinNs:   h.Min(),
		MaxNs:   h.Max(),
		P50Ns:   h.Quantile(0.50),
		P95Ns:   h.Quantile(0.95),
		P99Ns:   h.Quantile(0.99),
		Buckets: h.Buckets(),
	}
}
