package itbsim

import (
	"itbsim/internal/gm"
)

// MessageLayer is a minimal GM-style host message-passing layer over the
// simulator: messages larger than the MTU are segmented into packets and
// reassembled at the destination. Use NewMessageLayer, Send, then Drain.
type MessageLayer = gm.Layer

// MessageLayerConfig configures NewMessageLayer.
type MessageLayerConfig = gm.Config

// MessageID identifies a message accepted by MessageLayer.Send.
type MessageID = gm.MessageID

// Message is the layer's view of one application message.
type Message = gm.Message

// MessageStats summarises completed traffic on a MessageLayer.
type MessageStats = gm.Stats

// Message statuses.
const (
	// MessagePending: not all segments delivered yet.
	MessagePending = gm.Pending
	// MessageDelivered: every segment arrived.
	MessageDelivered = gm.Delivered
)

// NewMessageLayer builds a GM-style message layer over a network and
// routing table.
func NewMessageLayer(cfg MessageLayerConfig) (*MessageLayer, error) { return gm.New(cfg) }
