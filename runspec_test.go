package itbsim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"itbsim"
)

// TestRunSpecGrid drives the declarative public API end to end: a
// schemes × patterns grid expands into jobs, shares one table build per
// scheme, and reports curves in expansion order.
func TestRunSpecGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	cache := itbsim.NewTableCache()
	spec := itbsim.RunSpec{
		Net:     net,
		Schemes: []itbsim.Scheme{itbsim.UpDown, itbsim.ITBRR},
		Patterns: []itbsim.Pattern{
			{Kind: "uniform"},
			{Kind: "local", LocalRadius: 2},
		},
		Loads:           []float64{0.02, 0.04},
		MessageBytes:    128,
		Seed:            7,
		WarmupMessages:  50,
		MeasureMessages: 150,
		Cache:           cache,
		Label:           "grid",
	}
	rep, err := itbsim.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Curves) != 4 {
		t.Fatalf("2 schemes × 2 patterns should yield 4 curves, got %d", len(rep.Curves))
	}
	if cache.Builds() != 2 {
		t.Errorf("built %d tables for 2 schemes, want 2", cache.Builds())
	}
	if got := rep.Curves[0].Curve.Label; got != "grid UP/DOWN uniform" {
		t.Errorf("first curve label = %q", got)
	}
	for i := range rep.Curves {
		cr := &rep.Curves[i]
		if len(cr.Curve.Points) == 0 {
			t.Errorf("curve %d (%s) is empty", i, cr.Job.Label)
			continue
		}
		if cr.Curve.Points[0].Result.Accepted <= 0 {
			t.Errorf("curve %d (%s): degenerate first point", i, cr.Job.Label)
		}
	}

	// The report serializes as JSON with one entry per curve.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Parallel int `json:"parallel"`
		Curves   []struct {
			Scheme string `json:"scheme"`
			Points []struct {
				Accepted float64 `json:"accepted"`
			} `json:"points"`
		} `json:"curves"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if len(decoded.Curves) != 4 || decoded.Curves[0].Scheme != "UP/DOWN" {
		t.Errorf("JSON report malformed: %+v", decoded)
	}
}

// TestRunSpecDeterministicReplicas: replicas draw independent streams but
// the whole run is reproducible, and parallelism does not change values.
func TestRunSpecDeterministicReplicas(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation too slow for -short")
	}
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := func(parallel int) itbsim.RunSpec {
		return itbsim.RunSpec{
			Net:             net,
			Schemes:         []itbsim.Scheme{itbsim.ITBRR},
			Patterns:        []itbsim.Pattern{{Kind: "uniform"}},
			Replicas:        3,
			Loads:           []float64{0.03},
			MessageBytes:    128,
			Seed:            1,
			WarmupMessages:  50,
			MeasureMessages: 150,
			Parallel:        parallel,
		}
	}
	seq, err := itbsim.Run(spec(1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := itbsim.Run(spec(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Curves) != 3 {
		t.Fatalf("3 replicas should yield 3 curves, got %d", len(seq.Curves))
	}
	for i := range seq.Curves {
		if !reflect.DeepEqual(seq.Curves[i].Curve, par.Curves[i].Curve) {
			t.Errorf("replica %d differs between parallel=1 and parallel=4", i)
		}
	}
	a := seq.Curves[0].Curve.Points[0].Result.AvgLatencyNs
	b := seq.Curves[1].Curve.Points[0].Result.AvgLatencyNs
	if a == b {
		t.Error("replicas produced identical latencies; seed streams not independent")
	}
	if !strings.Contains(seq.Curves[1].Curve.Label, "r1") {
		t.Errorf("replica label = %q", seq.Curves[1].Curve.Label)
	}
}

// TestSimulateContext: the public cancellable entry point.
func TestSimulateContext(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		t.Fatal(err)
	}
	cfg := itbsim.SimConfig{
		Net: net, Table: tab, Dest: dest,
		Load: 0.01, MessageBytes: 128, Seed: 1,
		WarmupMessages: 10, MeasureMessages: 50,
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := itbsim.SimulateContext(ctx, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SimulateContext returned %v", err)
	}
	res, err := itbsim.SimulateContext(context.Background(), cfg)
	if err != nil || res.Accepted <= 0 {
		t.Fatalf("SimulateContext = %+v, %v", res, err)
	}
}

// TestDeriveSeedExported: facade passthrough.
func TestDeriveSeedExported(t *testing.T) {
	if itbsim.DeriveSeed(1, 2) == itbsim.DeriveSeed(1, 3) {
		t.Error("coordinates ignored")
	}
	if itbsim.DeriveSeed(1, 2) != itbsim.DeriveSeed(1, 2) {
		t.Error("not deterministic")
	}
}
