package itbsim_test

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"itbsim"
)

func TestFacadeTopologies(t *testing.T) {
	cases := []struct {
		name            string
		build           func() (*itbsim.Network, error)
		switches, hosts int
	}{
		{"torus", func() (*itbsim.Network, error) { return itbsim.NewTorus(4, 4, 2) }, 16, 32},
		{"express", func() (*itbsim.Network, error) { return itbsim.NewExpressTorus(8, 8, 1) }, 64, 64},
		{"cplant", func() (*itbsim.Network, error) { return itbsim.NewCplant(1) }, 50, 50},
		{"mesh", func() (*itbsim.Network, error) { return itbsim.NewMesh(3, 3, 1) }, 9, 9},
		{"hypercube", func() (*itbsim.Network, error) { return itbsim.NewHypercube(4, 1) }, 16, 16},
	}
	for _, c := range cases {
		net, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if net.Switches != c.switches || net.NumHosts() != c.hosts {
			t.Errorf("%s: %d switches %d hosts, want %d/%d",
				c.name, net.Switches, net.NumHosts(), c.switches, c.hosts)
		}
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	net, err := itbsim.NewCustom("line", 3, [][2]int{{0, 1}, {1, 2}}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	st := tab.ComputeStats()
	// A line is a tree: up*/down* is always minimal.
	if st.MinimalFraction != 1 {
		t.Errorf("line topology minimal fraction = %f", st.MinimalFraction)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := itbsim.Simulate(itbsim.SimConfig{
		Net: net, Table: tab, Dest: dest,
		Load: 0.02, MessageBytes: 128, Seed: 1,
		WarmupMessages: 50, MeasureMessages: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted <= 0 || res.AvgLatencyNs <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestFacadeSweep(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		t.Fatal(err)
	}
	curve, err := itbsim.Sweep(itbsim.RunSpec{
		Net: net, Table: tab, Dest: dest,
		Loads: []float64{0.01, 0.02}, MessageBytes: 128, Seed: 1,
		WarmupMessages: 50, MeasureMessages: 150, Label: "facade",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("curve has %d points", len(curve.Points))
	}
	if curve.SaturationThroughput() <= 0 {
		t.Error("no throughput measured")
	}
	if !strings.Contains(curve.Table(), "facade") {
		t.Error("label missing from table output")
	}
	if _, err := itbsim.Sweep(itbsim.RunSpec{Net: net, Table: tab, Dest: dest}); err == nil {
		t.Error("empty load grid accepted")
	}

	// The single-curve form is also a method on the spec itself.
	mcurve, err := itbsim.RunSpec{
		Net: net, Table: tab, Dest: dest,
		Loads: []float64{0.01}, MessageBytes: 128, Seed: 1,
		WarmupMessages: 50, MeasureMessages: 150, Label: "method",
	}.Sweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(mcurve.Points) != 1 || mcurve.Label != "method" {
		t.Errorf("RunSpec.Sweep returned %d points, label %q", len(mcurve.Points), mcurve.Label)
	}
}

func TestFacadeTrafficConstructors(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := itbsim.Uniform(net.NumHosts()); err != nil {
		t.Error(err)
	}
	if _, err := itbsim.BitReversal(net.NumHosts()); err != nil {
		t.Error(err)
	}
	if _, err := itbsim.Hotspot(net.NumHosts(), 5, 0.05); err != nil {
		t.Error(err)
	}
	if _, err := itbsim.Local(net, 3); err != nil {
		t.Error(err)
	}
}

func TestFacadeParamsAndAnalyze(t *testing.T) {
	p := itbsim.DefaultParams()
	if p.CycleNs != 6.25 || p.SlackBufferFlits != 80 {
		t.Errorf("unexpected default params: %+v", p)
	}
	net, err := itbsim.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := itbsim.AnalyzeLinkUtil(net, make([]float64, net.NumChannels()), 0, 5)
	if rep.Summary.N != net.NumChannels() {
		t.Errorf("analyze saw %d channels", rep.Summary.N)
	}
}

// TestFacadeConfigErrors pins the typed constructor errors: every New*
// guard reports a *itbsim.ConfigError naming the offending field, and the
// rendered messages stay stable.
func TestFacadeConfigErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*itbsim.Network, error)
		field string
		msg   string
	}{
		{"torus", func() (*itbsim.Network, error) { return itbsim.NewTorus(1, 8, 2) },
			"rows/cols", "invalid rows/cols 1x8: torus needs at least 2x2 switches"},
		{"express", func() (*itbsim.Network, error) { return itbsim.NewExpressTorus(8, 1, 2) },
			"rows/cols", "invalid rows/cols 8x1: express torus needs at least 2x2 switches"},
		{"mesh", func() (*itbsim.Network, error) { return itbsim.NewMesh(1, 1, 2) },
			"rows/cols", "invalid rows/cols 1x1: mesh needs at least 2 switches"},
		{"hypercube", func() (*itbsim.Network, error) { return itbsim.NewHypercube(0, 2) },
			"dim", "invalid dim 0: hypercube dimension out of range [1,16]"},
		{"torus3d", func() (*itbsim.Network, error) { return itbsim.NewTorus3D(2, 2, 1, 2) },
			"x/y/z", "invalid x/y/z 2x2x1: 3-D torus needs at least 2x2x2 switches"},
		{"fattree-k", func() (*itbsim.Network, error) { return itbsim.NewFatTree(1, 2) },
			"k", "invalid k 1: fat tree needs arity k >= 2"},
		{"fattree-n", func() (*itbsim.Network, error) { return itbsim.NewFatTree(2, 1) },
			"n", "invalid n 1: fat tree needs at least 2 levels"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := c.build()
			if err == nil {
				t.Fatal("invalid configuration accepted")
			}
			var ce *itbsim.ConfigError
			if !errors.As(err, &ce) {
				t.Fatalf("error is %T, want *itbsim.ConfigError", err)
			}
			if ce.Field != c.field {
				t.Errorf("Field = %q, want %q", ce.Field, c.field)
			}
			if err.Error() != c.msg {
				t.Errorf("message = %q, want %q", err.Error(), c.msg)
			}
		})
	}
}

// TestFacadeSimulateSharded runs the facade end to end with explicit shard
// counts, pinning that SimConfig.Shards is honored and shard-count
// invariant, and that invalid counts surface a *itbsim.ConfigError.
func TestFacadeSimulateSharded(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		t.Fatal(err)
	}
	cfg := itbsim.SimConfig{
		Net: net, Table: tab, Dest: dest,
		Load: 0.02, MessageBytes: 128, Seed: 1,
		WarmupMessages: 50, MeasureMessages: 200,
	}
	cfg.Shards = 1
	serial, err := itbsim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = 4
	sharded, err := itbsim.Simulate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, sharded) {
		t.Error("Shards=4 result differs from Shards=1")
	}
	cfg.Shards = -3
	_, err = itbsim.Simulate(cfg)
	var ce *itbsim.ConfigError
	if !errors.As(err, &ce) || ce.Field != "Shards" {
		t.Errorf("Shards=-3 returned %v, want a *itbsim.ConfigError on field Shards", err)
	}
}

func TestFacadeBuildRoutesWith(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := itbsim.BuildRoutesConfig{Scheme: itbsim.ITBRR, Root: 5, MaxAlternatives: 3}
	tab, err := itbsim.BuildRoutesWith(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := tab.ComputeStats(); st.MaxAlternatives > 3 {
		t.Errorf("alternatives cap ignored: %d", st.MaxAlternatives)
	}
}
