package itbsim_test

import (
	"strings"
	"testing"

	"itbsim"
)

func TestFacadeTopologies(t *testing.T) {
	cases := []struct {
		name            string
		build           func() (*itbsim.Network, error)
		switches, hosts int
	}{
		{"torus", func() (*itbsim.Network, error) { return itbsim.NewTorus(4, 4, 2) }, 16, 32},
		{"express", func() (*itbsim.Network, error) { return itbsim.NewExpressTorus(8, 8, 1) }, 64, 64},
		{"cplant", func() (*itbsim.Network, error) { return itbsim.NewCplant(1) }, 50, 50},
		{"mesh", func() (*itbsim.Network, error) { return itbsim.NewMesh(3, 3, 1) }, 9, 9},
		{"hypercube", func() (*itbsim.Network, error) { return itbsim.NewHypercube(4, 1) }, 16, 16},
	}
	for _, c := range cases {
		net, err := c.build()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if net.Switches != c.switches || net.NumHosts() != c.hosts {
			t.Errorf("%s: %d switches %d hosts, want %d/%d",
				c.name, net.Switches, net.NumHosts(), c.switches, c.hosts)
		}
	}
}

func TestFacadeCustomTopology(t *testing.T) {
	net, err := itbsim.NewCustom("line", 3, [][2]int{{0, 1}, {1, 2}}, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	st := tab.ComputeStats()
	// A line is a tree: up*/down* is always minimal.
	if st.MinimalFraction != 1 {
		t.Errorf("line topology minimal fraction = %f", st.MinimalFraction)
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		t.Fatal(err)
	}
	res, err := itbsim.Simulate(itbsim.SimConfig{
		Net: net, Table: tab, Dest: dest,
		Load: 0.02, MessageBytes: 128, Seed: 1,
		WarmupMessages: 50, MeasureMessages: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted <= 0 || res.AvgLatencyNs <= 0 {
		t.Errorf("degenerate result %+v", res)
	}
}

func TestFacadeSweep(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := itbsim.BuildRoutes(net, itbsim.UpDown)
	if err != nil {
		t.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		t.Fatal(err)
	}
	curve, err := itbsim.Sweep(itbsim.SweepConfig{
		Net: net, Table: tab, Dest: dest,
		Loads: []float64{0.01, 0.02}, MessageBytes: 128, Seed: 1,
		WarmupMessages: 50, MeasureMessages: 150, Label: "facade",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(curve.Points) != 2 {
		t.Fatalf("curve has %d points", len(curve.Points))
	}
	if curve.SaturationThroughput() <= 0 {
		t.Error("no throughput measured")
	}
	if !strings.Contains(curve.Table(), "facade") {
		t.Error("label missing from table output")
	}
	if _, err := itbsim.Sweep(itbsim.SweepConfig{Net: net, Table: tab, Dest: dest}); err == nil {
		t.Error("empty load grid accepted")
	}
}

func TestFacadeTrafficConstructors(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := itbsim.Uniform(net.NumHosts()); err != nil {
		t.Error(err)
	}
	if _, err := itbsim.BitReversal(net.NumHosts()); err != nil {
		t.Error(err)
	}
	if _, err := itbsim.Hotspot(net.NumHosts(), 5, 0.05); err != nil {
		t.Error(err)
	}
	if _, err := itbsim.Local(net, 3); err != nil {
		t.Error(err)
	}
}

func TestFacadeParamsAndAnalyze(t *testing.T) {
	p := itbsim.DefaultParams()
	if p.CycleNs != 6.25 || p.SlackBufferFlits != 80 {
		t.Errorf("unexpected default params: %+v", p)
	}
	net, err := itbsim.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep := itbsim.AnalyzeLinkUtil(net, make([]float64, net.NumChannels()), 0, 5)
	if rep.Summary.N != net.NumChannels() {
		t.Errorf("analyze saw %d channels", rep.Summary.N)
	}
}

func TestFacadeBuildRoutesWith(t *testing.T) {
	net, err := itbsim.NewTorus(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := itbsim.BuildRoutesConfig{Scheme: itbsim.ITBRR, Root: 5, MaxAlternatives: 3}
	tab, err := itbsim.BuildRoutesWith(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := tab.ComputeStats(); st.MaxAlternatives > 3 {
		t.Errorf("alternatives cap ignored: %d", st.MaxAlternatives)
	}
}
