package itbsim

import (
	"fmt"

	"itbsim/internal/netsim"
	"itbsim/internal/stats"
)

// Curve is an ascending-load latency/traffic sweep of one routing scheme,
// the unit of the paper's performance figures.
type Curve = stats.Curve

// SweepPoint is one load point of a Curve.
type SweepPoint = stats.SweepPoint

// LinkUtilReport summarises per-channel utilization (figures 8, 9, 11).
type LinkUtilReport = stats.LinkUtilReport

// SweepConfig configures a latency-vs-traffic sweep through the public API.
type SweepConfig struct {
	Net   *Network
	Table *RoutingTable
	Dest  DestFn
	// Loads are the injection rates to visit, ascending, in
	// flits/ns/switch. The sweep stops one point after saturation.
	Loads           []float64
	MessageBytes    int
	Seed            int64
	WarmupMessages  int
	MeasureMessages int
	MaxCycles       int64
	Label           string
}

// Sweep runs the loads in order, cloning the routing table per point so the
// round-robin state starts fresh, and stops one point after accepted
// traffic first drops below 92% of the injected traffic.
func Sweep(cfg SweepConfig) (Curve, error) {
	c := Curve{Label: cfg.Label}
	if len(cfg.Loads) == 0 {
		return c, fmt.Errorf("itbsim: Sweep needs at least one load")
	}
	saturated := false
	for i, load := range cfg.Loads {
		res, err := Simulate(netsim.Config{
			Net:             cfg.Net,
			Table:           cfg.Table.Clone(),
			Dest:            cfg.Dest,
			Load:            load,
			MessageBytes:    cfg.MessageBytes,
			Seed:            cfg.Seed + int64(i)*101,
			WarmupMessages:  cfg.WarmupMessages,
			MeasureMessages: cfg.MeasureMessages,
			MaxCycles:       cfg.MaxCycles,
		})
		if err != nil {
			return c, err
		}
		c.Points = append(c.Points, SweepPoint{Load: load, Result: res})
		if saturated {
			break
		}
		if res.Accepted < 0.92*res.Injected {
			saturated = true
		}
	}
	return c, nil
}

// AnalyzeLinkUtil summarises a run's per-channel utilization relative to
// the up*/down* root (switch 0 by default in this library).
func AnalyzeLinkUtil(net *Network, linkBusy []float64, root, topN int) LinkUtilReport {
	return stats.AnalyzeLinkUtil(net, linkBusy, root, topN)
}
