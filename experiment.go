package itbsim

import (
	"context"
	"io"

	"itbsim/internal/metrics"
	"itbsim/internal/netsim"
	"itbsim/internal/runner"
	"itbsim/internal/stats"
)

// Curve is an ascending-load latency/traffic sweep of one routing scheme,
// the unit of the paper's performance figures.
type Curve = stats.Curve

// SweepPoint is one load point of a Curve.
type SweepPoint = stats.SweepPoint

// LinkUtilReport summarises per-channel utilization (figures 8, 9, 11).
type LinkUtilReport = stats.LinkUtilReport

// RunSpec declares a grid of latency/traffic sweeps: a network, the
// schemes and traffic patterns to cross, the ascending load grid, and the
// measurement protocol. Run expands it into independent curve jobs
// (scheme × pattern × replica) and executes them on a worker pool with
// deterministic seed derivation — results are byte-identical at every
// Parallel setting.
//
// Two forms are accepted. The declarative grid form sets Schemes and
// Patterns and lets the runner build routing tables through a shared
// cache (one build per scheme, cloned per job). The single-curve form
// sets a prebuilt Table and an explicit Dest; run it with Sweep (the
// package function or the RunSpec.Sweep method).
type RunSpec = runner.Spec

// Pattern declares a traffic pattern for RunSpec grids: Kind "uniform",
// "bitrev", "hotspot", "local", or "custom" (explicit DestFn).
type Pattern = runner.Pattern

// Job identifies one curve of a RunSpec expansion.
type Job = runner.Job

// CurveResult is one finished job: its curve, timing, and any error.
type CurveResult = runner.CurveResult

// RunReport is the outcome of a Run: every curve in expansion order plus
// wall-clock and table-build accounting. WriteJSON emits it as JSON.
type RunReport = runner.Report

// Reporter observes a Run's progress; see NewLogReporter for a plain-text
// implementation. The runner serializes calls, so implementations need
// not be thread-safe.
type Reporter = runner.Reporter

// TableCache memoizes routing-table construction; put one in
// RunSpec.Cache to share builds across Runs on the same network.
type TableCache = runner.TableCache

// NewTableCache returns an empty routing-table cache.
func NewTableCache() *TableCache { return runner.NewTableCache() }

// NewLogReporter returns a Reporter printing one line per job start, load
// point, and job completion to w.
func NewLogReporter(w io.Writer) Reporter { return runner.NewLogReporter(w) }

// Run expands the spec and executes its jobs across RunSpec.Parallel
// workers (default GOMAXPROCS). The report holds every curve in expansion
// order; on error the report is returned alongside it with the completed
// curves filled in.
func Run(spec RunSpec) (*RunReport, error) { return runner.Run(spec) }

// Sweep runs a single-curve spec — the historic API — and returns its
// curve: the loads in order, cloning the routing table per point so the
// round-robin state starts fresh, stopping one point after accepted
// traffic first drops below 92% of the injected traffic. It is
// RunSpec.Sweep as a package function. For multi-curve parallel sweeps,
// use Run.
func Sweep(cfg RunSpec) (Curve, error) { return cfg.Sweep() }

// SimulateContext is Simulate with cooperative cancellation: the simulator
// checks ctx every few thousand cycles and aborts with its error when it
// fires, making paper-scale sweeps interruptible. A run that completes is
// byte-identical to an uncancelled Simulate.
func SimulateContext(ctx context.Context, cfg SimConfig) (*Result, error) {
	return netsim.RunContext(ctx, cfg)
}

// DeriveSeed derives an independent child seed from a root seed and a
// coordinate path via splitmix64 — the derivation the runner uses per
// (scheme, pattern, replica, load point). Use it instead of arithmetic on
// the root seed (seed+i, seed*31…), which correlates adjacent streams.
func DeriveSeed(root int64, coords ...int64) int64 {
	return runner.DeriveSeed(root, coords...)
}

// AnalyzeLinkUtil summarises a run's per-channel utilization relative to
// the up*/down* root (switch 0 by default in this library).
func AnalyzeLinkUtil(net *Network, linkBusy []float64, root, topN int) LinkUtilReport {
	return stats.AnalyzeLinkUtil(net, linkBusy, root, topN)
}

// MetricsConfig enables and tunes the windowed observability collector:
// set RunSpec.Metrics (or SimConfig.Metrics) to a non-nil value to collect
// per-link utilization series, switch buffer occupancy, and per-host
// ITB/backpressure telemetry. The zero value uses the default window.
type MetricsConfig = metrics.Config

// Metrics is one run's (or one aggregated cell's) frozen telemetry; the
// schema is documented field by field in docs/METRICS.md.
type Metrics = metrics.Metrics

// LatencyHistogram is a streaming log-bucketed histogram with ≤6.3%
// relative bucket error; every Result's latency percentiles come from one.
type LatencyHistogram = metrics.Histogram

// MetricsPoint labels one Metrics with its experimental coordinates for
// export via WriteMetricsJSON/WriteMetricsCSV.
type MetricsPoint = metrics.ExportPoint

// WriteMetricsJSON writes telemetry export points as one JSON document
// (schema in docs/METRICS.md). Collect them from RunReport.MetricsPoints.
func WriteMetricsJSON(w io.Writer, points []MetricsPoint) error {
	return metrics.WriteJSON(w, points)
}

// WriteMetricsCSV writes telemetry export points as one long-format CSV
// table (schema in docs/METRICS.md).
func WriteMetricsCSV(w io.Writer, points []MetricsPoint) error {
	return metrics.WriteCSV(w, points)
}
