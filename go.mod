module itbsim

go 1.22
