// Cplant-hotspot mirrors table 3 of the paper at a reduced host count: on
// the Sandia CPLANT topology with 5% of the traffic aimed at one hotspot
// host, compare the saturation throughput of the original Myrinet routing
// against in-transit buffers with round-robin path selection.
//
//	go run ./examples/cplant-hotspot
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	net, err := itbsim.NewCplant(2) // paper: 8 hosts per switch (400 hosts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net)

	const hotspotHost = 42
	dest, err := itbsim.Hotspot(net.NumHosts(), hotspotHost, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	loads := []float64{0.01, 0.02, 0.035, 0.05, 0.065, 0.08, 0.095, 0.11}

	sat := map[itbsim.Scheme]float64{}
	for _, scheme := range []itbsim.Scheme{itbsim.UpDown, itbsim.ITBRR} {
		table, err := itbsim.BuildRoutes(net, scheme)
		if err != nil {
			log.Fatal(err)
		}
		curve, err := itbsim.Sweep(itbsim.SweepConfig{
			Net: net, Table: table, Dest: dest,
			Loads: loads, MessageBytes: 512, Seed: 1,
			WarmupMessages: 100, MeasureMessages: 600,
			Label: scheme.String(),
		})
		if err != nil {
			log.Fatal(err)
		}
		sat[scheme] = curve.SaturationThroughput()
		fmt.Printf("%-8s saturation: %.4f flits/ns/switch\n", scheme, sat[scheme])
	}
	fmt.Printf("ITB-RR / UP-DOWN throughput ratio: %.2fx (paper, table 3: 1.32x)\n",
		sat[itbsim.ITBRR]/sat[itbsim.UpDown])
}
