// Cplant-hotspot mirrors table 3 of the paper at a reduced host count: on
// the Sandia CPLANT topology with 5% of the traffic aimed at one hotspot
// host, compare the saturation throughput of the original Myrinet routing
// against in-transit buffers with round-robin path selection.
//
// Both scheme curves run from one RunSpec grid with a declarative hotspot
// pattern; the runner handles table construction and the load walk.
//
//	go run ./examples/cplant-hotspot
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	net, err := itbsim.NewCplant(2) // paper: 8 hosts per switch (400 hosts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net)

	const hotspotHost = 42
	loads := []float64{0.01, 0.02, 0.035, 0.05, 0.065, 0.08, 0.095, 0.11}

	rep, err := itbsim.Run(itbsim.RunSpec{
		Net:     net,
		Schemes: []itbsim.Scheme{itbsim.UpDown, itbsim.ITBRR},
		Patterns: []itbsim.Pattern{
			{Kind: "hotspot", HotspotHost: hotspotHost, HotspotFraction: 0.05},
		},
		Loads: loads, MessageBytes: 512, Seed: 1,
		WarmupMessages: 100, MeasureMessages: 600,
	})
	if err != nil {
		log.Fatal(err)
	}

	sat := map[itbsim.Scheme]float64{}
	for _, cr := range rep.Curves {
		if cr.Err != nil {
			log.Fatal(cr.Err)
		}
		sat[cr.Job.Scheme] = cr.Curve.SaturationThroughput()
		fmt.Printf("%-8s saturation: %.4f flits/ns/switch\n", cr.Job.Scheme, sat[cr.Job.Scheme])
	}
	fmt.Printf("ITB-RR / UP-DOWN throughput ratio: %.2fx (paper, table 3: 1.32x)\n",
		sat[itbsim.ITBRR]/sat[itbsim.UpDown])
}
