// Torus-uniform reproduces the shape of figure 7a at a reduced scale: the
// latency-vs-accepted-traffic curves of UP/DOWN, ITB-SP, and ITB-RR on a
// 2-D torus under uniform traffic, and the resulting saturation
// throughputs. On the paper's 8x8/512-host configuration the in-transit
// buffer mechanism doubles UP/DOWN throughput; at this 4x4 scale the gap is
// smaller but ITB-RR still wins.
//
// The three scheme curves are declared as one RunSpec grid: the runner
// builds each routing table once and can walk the curves in parallel.
//
//	go run ./examples/torus-uniform
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	loads := []float64{0.01, 0.025, 0.04, 0.055, 0.07, 0.085, 0.1, 0.115}

	rep, err := itbsim.Run(itbsim.RunSpec{
		Net:      net,
		Schemes:  []itbsim.Scheme{itbsim.UpDown, itbsim.ITBSP, itbsim.ITBRR},
		Patterns: []itbsim.Pattern{{Kind: "uniform"}},
		Loads:    loads, MessageBytes: 512, Seed: 1,
		WarmupMessages: 100, MeasureMessages: 600,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scheme    saturation(flits/ns/switch)   zero-load latency(ns)")
	for _, cr := range rep.Curves {
		if cr.Err != nil {
			log.Fatal(cr.Err)
		}
		fmt.Printf("%-9s %8.4f %29.0f\n",
			cr.Job.Scheme, cr.Curve.SaturationThroughput(), cr.Curve.Points[0].Result.AvgLatencyNs)
		fmt.Print(cr.Curve.Table())
	}
}
