// Torus-uniform reproduces the shape of figure 7a at a reduced scale: the
// latency-vs-accepted-traffic curves of UP/DOWN, ITB-SP, and ITB-RR on a
// 2-D torus under uniform traffic, and the resulting saturation
// throughputs. On the paper's 8x8/512-host configuration the in-transit
// buffer mechanism doubles UP/DOWN throughput; at this 4x4 scale the gap is
// smaller but ITB-RR still wins.
//
//	go run ./examples/torus-uniform
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		log.Fatal(err)
	}
	loads := []float64{0.01, 0.025, 0.04, 0.055, 0.07, 0.085, 0.1, 0.115}

	fmt.Println("scheme    saturation(flits/ns/switch)   zero-load latency(ns)")
	for _, scheme := range []itbsim.Scheme{itbsim.UpDown, itbsim.ITBSP, itbsim.ITBRR} {
		table, err := itbsim.BuildRoutes(net, scheme)
		if err != nil {
			log.Fatal(err)
		}
		curve, err := itbsim.Sweep(itbsim.SweepConfig{
			Net: net, Table: table, Dest: dest,
			Loads: loads, MessageBytes: 512, Seed: 1,
			WarmupMessages: 100, MeasureMessages: 600,
			Label: scheme.String(),
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %8.4f %29.0f\n",
			scheme, curve.SaturationThroughput(), curve.Points[0].Result.AvgLatencyNs)
		fmt.Print(curve.Table())
	}
}
