// Adaptive-routing demonstrates the source-host adaptivity the paper names
// as future work (§5): instead of cycling alternatives round-robin, the
// source NIC keeps a latency estimate per alternative minimal route and
// sends each message over the current best. Under a hotspot workload the
// adaptive policy steers traffic away from congested alternatives.
//
//	go run ./examples/adaptive-routing
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	const hotspotHost = 10
	dest, err := itbsim.Hotspot(net.NumHosts(), hotspotHost, 0.08)
	if err != nil {
		log.Fatal(err)
	}

	run := func(label string, sel itbsim.Selector) {
		table, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
		if err != nil {
			log.Fatal(err)
		}
		cfg := itbsim.SimConfig{
			Net: net, Table: table, Dest: dest,
			Load: 0.05, MessageBytes: 512, Seed: 1,
			WarmupMessages: 200, MeasureMessages: 1500,
		}
		if sel != nil {
			table.SetSelector(sel)
			cfg.Notify = func(d itbsim.Delivery) {
				table.Observe(d.SrcHost, d.Route, d.LatencyNs)
			}
		}
		res, err := itbsim.Simulate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s accepted %.4f  avg %.0f ns  p95 %.0f ns  p99 %.0f ns\n",
			label, res.Accepted, res.AvgLatencyNs, res.LatencyP95Ns, res.LatencyP99Ns)
	}

	run("round-robin", nil)
	run("random", itbsim.NewRandomSelector(7))
	run("fewest-itb", itbsim.NewFewestITBSelector())
	run("adaptive", itbsim.NewAdaptiveSelector(itbsim.DefaultAdaptiveConfig()))
}
