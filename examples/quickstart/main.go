// Quickstart: build the paper's 2-D torus, route it with in-transit
// buffers (round-robin path selection), drive it with uniform traffic at a
// moderate load, and print the headline measurements.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	// A 4x4 torus with 2 hosts per 16-port switch keeps the run under a
	// second; the paper's configuration is NewTorus(8, 8, 8).
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net)

	table, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routes: %.0f%% minimal, %.2f ITBs per route on average\n",
		100*table.ComputeStats().MinimalFraction, table.ComputeStats().AvgITBs)

	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		log.Fatal(err)
	}

	res, err := itbsim.Simulate(itbsim.SimConfig{
		Net:             net,
		Table:           table,
		Dest:            dest,
		Load:            0.02, // flits/ns/switch
		MessageBytes:    512,
		Seed:            1,
		WarmupMessages:  100,
		MeasureMessages: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("accepted traffic : %.4f flits/ns/switch\n", res.Accepted)
	fmt.Printf("average latency  : %.0f ns\n", res.AvgLatencyNs)
	fmt.Printf("ITBs per message : %.3f\n", res.AvgITBsPerMessage)
}
