// All-to-all runs the message-level workload behind the paper's traffic
// patterns: a personalized all-to-all exchange (every host sends a block to
// every other host), the communication core of parallel numerical
// algorithms. It measures the total exchange completion time under the
// original Myrinet routing and under in-transit buffers, using the GM-style
// message layer with MTU segmentation.
//
//	go run ./examples/all-to-all
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	net, err := itbsim.NewTorus(4, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	const blockBytes = 4096 // per-pair block
	const mtu = 1024

	for _, scheme := range []itbsim.Scheme{itbsim.UpDown, itbsim.ITBRR} {
		table, err := itbsim.BuildRoutes(net, scheme)
		if err != nil {
			log.Fatal(err)
		}
		layer, err := itbsim.NewMessageLayer(itbsim.MessageLayerConfig{
			Net: net, Table: table, MTU: mtu, MaxCycles: 200_000_000,
		})
		if err != nil {
			log.Fatal(err)
		}
		n := net.NumHosts()
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				if src == dst {
					continue
				}
				if _, err := layer.Send(src, dst, blockBytes); err != nil {
					log.Fatal(err)
				}
			}
		}
		if err := layer.Drain(); err != nil {
			log.Fatal(err)
		}
		st := layer.Stats()
		fmt.Printf("%-8s all-to-all of %d x %d B blocks: completion %.1f us (avg message %.1f us)\n",
			scheme, st.Sent, blockBytes, st.MaxLatencyNs/1000, st.AvgLatencyNs/1000)
	}
}
