// Custom-topology shows the library on a user-supplied switch graph: an
// irregular NOW-style network given as an edge list — the setting the
// in-transit buffer mechanism was originally proposed for. It prints the
// static routing statistics (how many minimal paths up*/down* forbids, how
// many ITBs minimal routing needs) and runs a short simulation of each
// scheme.
//
//	go run ./examples/custom-topology
package main

import (
	"fmt"
	"log"

	"itbsim"
)

func main() {
	// A 10-switch irregular network, 4 hosts per switch.
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 3}, {2, 4}, {3, 5}, {4, 5},
		{5, 6}, {6, 7}, {7, 8}, {8, 4}, {9, 6}, {9, 1}, {3, 8},
	}
	net, err := itbsim.NewCustom("irregular-10", 10, edges, 4, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(net)

	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("scheme    minimal%  avgdist  avgITBs  |  accepted   latency(ns)")
	for _, scheme := range []itbsim.Scheme{itbsim.UpDown, itbsim.ITBSP, itbsim.ITBRR} {
		table, err := itbsim.BuildRoutes(net, scheme)
		if err != nil {
			log.Fatal(err)
		}
		st := table.ComputeStats()
		res, err := itbsim.Simulate(itbsim.SimConfig{
			Net: net, Table: table, Dest: dest,
			Load: 0.03, MessageBytes: 512, Seed: 1,
			WarmupMessages: 100, MeasureMessages: 500,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %7.1f%% %8.2f %8.2f  |  %.4f  %10.0f\n",
			scheme, 100*st.MinimalFraction, st.AvgDistance, st.AvgITBs,
			res.Accepted, res.AvgLatencyNs)
	}
}
