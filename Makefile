GO ?= go

.PHONY: all build vet test lint lint-alloc lint-alloc-baseline docs race race-determinism faults checkpoint optimize bench bench-lowload bench-shards bench-vc bench-optimize profile clean

all: build vet test lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static invariants: cmd/simlint proves the determinism and layering
# contracts (no map ranges or wall clock in deterministic packages — also
# interprocedurally, via the call-graph taint rule), shard-safety of the
# worker phases, checkpoint field coverage, switch exhaustiveness, the
# package DAG, dropped errors, and exact float compares, and checks every
# relative markdown link/anchor (the former cmd/mdlint). The gofmt check
# keeps the tree format-clean; vet runs first. See docs/LINT.md.
lint: vet
	$(GO) run ./cmd/simlint .
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

# Hot-path allocation gate: parses `go build -gcflags=-m` escape output
# and fails when a //sim:hotpath function gains a heap allocation not in
# the checked-in baseline (internal/lint/hotalloc.baseline). The build
# cache replays compiler diagnostics, so repeat runs are cheap.
lint-alloc:
	$(GO) run ./cmd/simlint -alloc .

# Regenerate the hotalloc baseline after a deliberate change.
lint-alloc-baseline:
	$(GO) run ./cmd/simlint -alloc-update .

# Former name of the lint target, kept as an alias.
docs: lint

test:
	$(GO) test ./...

# Full suite under the race detector. Slow; beyond the runner pool,
# the table cache, and the reporter serialization this now also covers
# the shard workers stepping one simulation concurrently. The explicit
# second line forces the core concurrency invariants to re-run uncached:
# the stranded-work property scan, the dense-scan equivalence goldens,
# the shared-table round-robin isolation, and the shard-equivalence
# sweep (every scheme x topology x faults byte-identical at Shards 1..N).
race:
	$(GO) test -race ./...
	$(GO) test -race -count=1 -run 'ActiveSetNeverStrandsWork|ActiveSetMatchesDense|SharedTableConcurrentRuns|ShardEquivalence|ShardEnqueueEquivalence' ./internal/netsim/

# The parallel-correctness core: byte-identical results across worker
# counts, single-flight table builds, and cancellation — all under -race.
race-determinism:
	$(GO) test -race -count=1 -run 'Determinism|TableCache|Reporter|Cancelled' ./internal/runner/
	$(GO) test -race -count=1 -run 'RunSpecDeterministicReplicas' .

# The fault-injection suite under the race detector: engine semantics and
# conservation (netsim), degraded-route property tests (faults), and the
# faulted determinism check — byte-identical results at -parallel 1 vs 8
# with a mid-run link failure and online reconfiguration (runner).
faults:
	$(GO) test -race -count=1 -run 'Fault|Fail|Degraded|StallDump' ./internal/netsim/ ./internal/faults/
	$(GO) test -race -count=1 -run 'FaultedDeterminism|SingleLinkFailureRecovery' ./internal/runner/

# The checkpoint/resume acceptance suite under the race detector: the
# resume-equivalence matrix (every mechanism x faults byte-identical after
# a mid-run snapshot+restore), the journal round-trip, the in-process
# mid-job interrupt, and the end-to-end SIGKILL-and-resume test that
# kills a child sweep and requires the resumed report to match an
# uninterrupted run's JSON exactly. See docs/CHECKPOINT.md.
checkpoint:
	$(GO) test -race -count=1 -run 'Checkpoint|Snapshot|ResumeEquivalence' ./internal/netsim/
	$(GO) test -race -count=1 -run 'KillAndResume|ResumeMidJob|SweepJournalRoundTrip|PanicContained' ./internal/runner/

# The route-optimizer suite under the race detector: the package-level
# property tests (invariants, determinism, deadlock freedom, escape
# pruning), the runner-level determinism matrix on optimized tables
# (-parallel 1 vs 8, Shards 1/2/NumCPU, optimizer + faults), the
# checkpoint table-fingerprint gate, and the optimized degraded-table
# reconfiguration tests. See docs/OPTIMIZE.md.
optimize:
	$(GO) test -race -count=1 ./internal/optimize/
	$(GO) test -race -count=1 -run 'Optimize' ./internal/runner/
	$(GO) test -race -count=1 -run 'RestoreRejectsDifferentTable' ./internal/netsim/
	$(GO) test -race -count=1 -run 'DegradedRoutingOptimized' ./internal/faults/
	$(GO) test -race -count=1 -run 'TableFingerprint' ./internal/routes/

# Figure-7 suite wall-clock, sequential vs parallel=NumCPU.
bench:
	$(GO) test -bench RunnerParallelFigure7 -benchtime=1x -run '^$$' .

# Active-set scheduler vs the legacy dense scan, at low load (the regime
# the scheduler exists for; must be >=2x) and at saturation (bookkeeping
# overhead; must stay within 5%). Records the numbers in BENCH_4.json.
bench-lowload:
	sh scripts/bench_lowload.sh

# Sharded core Shards=1 vs Shards=4 on a 32x32 torus (1024 switches).
# Records the numbers in BENCH_6.json with the host's CPU count — the
# speedup bar (>=2x) only applies on hosts with >=4 CPUs; single-CPU
# hosts measure coordination overhead instead. Budget ~5 minutes (the
# route build at this scale dominates).
bench-shards:
	sh scripts/bench_shards.sh

# ITB-RR vs VC flow control (2 lanes, LASH) on the small dragonfly —
# the per-point simulation-cost overhead of the VC switch pipeline.
# Records the numbers in BENCH_7.json; finishes in under a minute.
bench-vc:
	sh scripts/bench_vc.sh

# Congestion-aware route optimizer on the 8x8 torus under hotspot
# traffic: static vs optimized tables for UP/DOWN and ITB-RR, recording
# saturation throughput and knee p99 in BENCH_9.json. Fails if the
# optimized ITB-RR table does not measurably beat its static p99.
# Finishes in under a minute.
bench-optimize:
	sh scripts/bench_optimize.sh

# CPU + heap profile of a two-point sweep (one low-load point, one near
# saturation) via the -cpuprofile/-memprofile flags every tool accepts.
# Inspect with: $(GO) tool pprof cpu.pprof  (profiles are per-job labelled)
profile: build
	$(GO) run ./cmd/sweep -topo torus -scale medium -loads 0.002,0.014 \
		-parallel 1 -cpuprofile cpu.pprof -memprofile mem.pprof > /dev/null
	@echo "wrote cpu.pprof and mem.pprof; inspect with: $(GO) tool pprof cpu.pprof"

clean:
	$(GO) clean ./...
