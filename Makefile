GO ?= go

.PHONY: all build vet test docs race race-determinism faults bench clean

all: build vet test docs

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Documentation hygiene: every relative markdown link/anchor resolves
# (cmd/mdlint), the tree is gofmt-clean, and vet passes.
docs: vet
	$(GO) run ./cmd/mdlint .
	@unformatted=$$(gofmt -l .); if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi

test:
	$(GO) test ./...

# Full suite under the race detector. Slow; the simulator itself is
# single-threaded per job, so this mainly exercises the runner pool,
# the table cache, and the reporter serialization.
race:
	$(GO) test -race ./...

# The parallel-correctness core: byte-identical results across worker
# counts, single-flight table builds, and cancellation — all under -race.
race-determinism:
	$(GO) test -race -count=1 -run 'Determinism|TableCache|Reporter|Cancelled' ./internal/runner/
	$(GO) test -race -count=1 -run 'RunSpecDeterministicReplicas' .

# The fault-injection suite under the race detector: engine semantics and
# conservation (netsim), degraded-route property tests (faults), and the
# faulted determinism check — byte-identical results at -parallel 1 vs 8
# with a mid-run link failure and online reconfiguration (runner).
faults:
	$(GO) test -race -count=1 -run 'Fault|Fail|Degraded|StallDump' ./internal/netsim/ ./internal/faults/
	$(GO) test -race -count=1 -run 'FaultedDeterminism|SingleLinkFailureRecovery' ./internal/runner/

# Figure-7 suite wall-clock, sequential vs parallel=NumCPU.
bench:
	$(GO) test -bench RunnerParallelFigure7 -benchtime=1x -run '^$$' .

clean:
	$(GO) clean ./...
