#!/bin/sh
# bench_lowload.sh — runs the active-set vs dense-scan benchmarks on the
# paper's 8x8 torus and records the before/after numbers in BENCH_4.json.
# "Dense" is the legacy every-component-every-cycle loop (Config.DenseStep),
# kept in-tree as the baseline; "active" is the active-set scheduler. The
# acceptance bar is >=2x at low load (<=0.2 of saturation) and within 5% at
# saturation.
#
# Usage: scripts/bench_lowload.sh [count]   (runs per benchmark, default 3)
set -e
cd "$(dirname "$0")/.."
count=${1:-3}

out=$(go test ./internal/netsim/ -run '^$' \
	-bench 'LowLoadTorusPoint|SaturatedTorusPoint' -benchtime 3x -count "$count")
echo "$out"

echo "$out" | awk -v benchcount="$count" '
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sum[name] += $3
	n[name]++
}
END {
	low_a = sum["BenchmarkLowLoadTorusPoint"] / n["BenchmarkLowLoadTorusPoint"]
	low_d = sum["BenchmarkLowLoadTorusPointDense"] / n["BenchmarkLowLoadTorusPointDense"]
	sat_a = sum["BenchmarkSaturatedTorusPoint"] / n["BenchmarkSaturatedTorusPoint"]
	sat_d = sum["BenchmarkSaturatedTorusPointDense"] / n["BenchmarkSaturatedTorusPointDense"]
	printf "{\n"
	printf "  \"bench\": \"active-set scheduler vs dense per-cycle scan, 8x8 torus, UP/DOWN, 512B\",\n"
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"3x\",\n"
	printf "  \"count\": %d,\n", benchcount
	printf "  \"low_load\": {\n"
	printf "    \"load\": 0.002,\n"
	printf "    \"dense_ns_per_op\": %.0f,\n", low_d
	printf "    \"active_ns_per_op\": %.0f,\n", low_a
	printf "    \"speedup\": %.2f\n", low_d / low_a
	printf "  },\n"
	printf "  \"saturation\": {\n"
	printf "    \"load\": 0.033,\n"
	printf "    \"dense_ns_per_op\": %.0f,\n", sat_d
	printf "    \"active_ns_per_op\": %.0f,\n", sat_a
	printf "    \"speedup\": %.2f\n", sat_d / sat_a
	printf "  }\n"
	printf "}\n"
}' > BENCH_4.json

cat BENCH_4.json
