#!/bin/sh
# bench_shards.sh — runs the sharded-core benchmarks on a 32x32 torus
# (1024 switches) and records the Shards=1 vs Shards=4 wall-clocks in
# BENCH_6.json. Results are byte-identical at every shard count (the
# ShardEquivalence suite proves it), so this script measures speed only.
#
# The sharded stepping parallelizes cycles *inside* one simulation, so
# the speedup is bounded by the host's core count: on a multi-core host
# the acceptance bar is >=2x at Shards=4; on a single-CPU host (where
# the shard goroutines time-slice one core) the bar is instead that the
# coordination overhead stays within 10% of the serial path. The JSON
# records runtime.NumCPU so readers can tell which regime a recorded
# number came from.
#
# The up*/down* route build at this scale takes minutes and is shared by
# both benchmark variants (sync.Once in perf_test.go); budget ~5 minutes
# for the whole script.
#
# Usage: scripts/bench_shards.sh [count]   (runs per benchmark, default 3)
set -e
cd "$(dirname "$0")/.."
count=${1:-3}
ncpu=$(getconf _NPROCESSORS_ONLN)

out=$(go test ./internal/netsim/ -run '^$' \
	-bench 'ShardedTorusPoint' -benchtime 3x -count "$count" -timeout 60m)
echo "$out"

echo "$out" | awk -v benchcount="$count" -v ncpu="$ncpu" '
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sum[name] += $3
	n[name]++
}
END {
	s1 = sum["BenchmarkShardedTorusPoint1"] / n["BenchmarkShardedTorusPoint1"]
	s4 = sum["BenchmarkShardedTorusPoint4"] / n["BenchmarkShardedTorusPoint4"]
	printf "{\n"
	printf "  \"bench\": \"sharded core Shards=1 vs Shards=4, 32x32 torus (1024 switches), UP/DOWN, 512B, load 0.01\",\n"
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"cpus\": %d,\n", ncpu
	printf "  \"benchtime\": \"3x\",\n"
	printf "  \"count\": %d,\n", benchcount
	printf "  \"shards1_ns_per_op\": %.0f,\n", s1
	printf "  \"shards4_ns_per_op\": %.0f,\n", s4
	printf "  \"speedup\": %.2f,\n", s1 / s4
	if (ncpu < 4) {
		printf "  \"note\": \"recorded on a %d-CPU host: the shard workers time-slice, so no parallel speedup is observable here; the number above is the coordination-overhead measurement (serial/sharded, 1.0 = free). The >=2x bar applies on hosts with >=4 CPUs.\"\n", ncpu
	} else {
		printf "  \"note\": \"recorded on a %d-CPU host; acceptance bar is speedup >= 2.0 at Shards=4.\"\n", ncpu
	}
	printf "}\n"
}' > BENCH_6.json

cat BENCH_6.json
