#!/bin/sh
# bench_optimize.sh — measures what the congestion-aware route optimizer
# (sweep -optimize; see docs/OPTIMIZE.md) buys on the paper's 8x8 torus
# (64 switches, 128 hosts) under hotspot traffic (10% of all traffic to
# host 0), and records the numbers in BENCH_9.json.
#
# Two sweeps run over the same load grid — the static builder tables and
# the optimized tables (profiling pre-pass + rip-up/reroute) — for both
# UP/DOWN and ITB-RR. For each curve the script extracts the saturation
# throughput (highest accepted traffic on the grid) and the p99 latency at
# the knee load just past saturation onset, where congestion-aware
# rerouting matters most. The acceptance bar is a measurable improvement
# of the optimized table over static up*/down* in saturation throughput or
# knee p99: the headline ratio is optimized ITB-RR p99 over static, which
# lands well under 1.0 (the up*/down* tree leaves the optimizer little
# legal freedom at its default latency bounds, so its margin is small; the
# 10-alternative ITB-RR table is where rip-up/reroute pays). The whole
# script finishes in under a minute.
#
# Usage: scripts/bench_optimize.sh
set -e
cd "$(dirname "$0")/.."

loads=0.014,0.018,0.022,0.026,0.030
knee=0.022
static_csv=$(mktemp)
opt_csv=$(mktemp)
trap 'rm -f "$static_csv" "$opt_csv"' EXIT

go run ./cmd/sweep -topo torus -scale medium -traffic hotspot -hotspot 0 -frac 0.1 \
	-schemes updown,itb-rr -loads "$loads" -parallel 4 -csv "$static_csv" > /dev/null
go run ./cmd/sweep -topo torus -scale medium -traffic hotspot -hotspot 0 -frac 0.1 \
	-schemes updown,itb-rr -loads "$loads" -parallel 4 -optimize -csv "$opt_csv" > /dev/null

awk -F, -v knee="$knee" -v loads="$loads" '
function variant(file) { return file == ARGV[1] ? "static" : "optimized" }
FNR == 1 { next }  # header
{
	key = variant(FILENAME) SUBSEP $1
	if ($3 + 0 > sat[key]) sat[key] = $3 + 0
	if ($2 + 0 == knee + 0) p99[key] = $8 + 0
	label[$1] = 1
}
END {
	printf "{\n"
	printf "  \"bench\": \"congestion-aware route optimizer on the 8x8 torus (medium scale), hotspot traffic 10%% to host 0, 512B messages\",\n"
	printf "  \"loads\": \"%s\",\n", loads
	printf "  \"knee_load\": %s,\n", knee
	for (l in label) {
		scheme = (index(l, "UP/DOWN") ? "updown" : "itb_rr")
		ss = sat["static" SUBSEP l];    sp = p99["static" SUBSEP l]
		os = sat["optimized" SUBSEP l]; op = p99["optimized" SUBSEP l]
		printf "  \"%s\": {\n", scheme
		printf "    \"static\":    {\"saturation_flits_ns_switch\": %.6f, \"p99_ns_at_knee\": %.0f},\n", ss, sp
		printf "    \"optimized\": {\"saturation_flits_ns_switch\": %.6f, \"p99_ns_at_knee\": %.0f},\n", os, op
		printf "    \"optimized_over_static_saturation\": %.3f,\n", os / ss
		printf "    \"optimized_over_static_p99\": %.3f\n", op / sp
		printf "  },\n"
	}
	printf "  \"note\": \"optimized_over_static_p99 below 1.0 (or saturation above 1.0) is the optimizer paying for itself; the acceptance bar is a measurable ITB-RR improvement, and optimized ITB-RR must also beat static up*/down* outright.\"\n"
	printf "}\n"
}' "$static_csv" "$opt_csv" > BENCH_9.json

cat BENCH_9.json

# Acceptance gate: optimized ITB-RR must measurably improve on its static
# table (p99 at the knee), and beat the static up*/down* baseline outright.
awk '
/"itb_rr"/ { in_rr = 1 }
in_rr && /"optimized_over_static_p99"/ {
	v = $2 + 0
	if (v >= 0.95) { printf "FAIL: optimized ITB-RR p99 ratio %.3f, want < 0.95\n", v; exit 1 }
	printf "PASS: optimized ITB-RR p99 at knee is %.3f of static\n", v
	exit 0
}' BENCH_9.json
