#!/bin/sh
# bench_vc.sh — runs the ITB-vs-VC smoke benchmarks on the small
# dragonfly fabric (4 groups x 3 routers, 12 switches, 24 hosts) and
# records both wall-clocks in BENCH_7.json. The two runs simulate the
# same offered load with the two deadlock-avoidance mechanisms the
# simulator supports: in-transit buffers (ITB-RR, the paper's mechanism)
# and virtual-channel flow control (two lanes, LASH layer assignment;
# see docs/VC.md).
#
# This is a cost measurement, not a latency comparison — the VC switch
# pipeline tracks per-lane buffers and credits, so each simulated cycle
# is heavier than the ITB path. The recorded ratio is the per-point
# simulation-cost overhead of enabling VC mode; the acceptance bar is
# that it stays around 2x or better. The whole script finishes in well
# under a minute.
#
# Usage: scripts/bench_vc.sh [count]   (runs per benchmark, default 3)
set -e
cd "$(dirname "$0")/.."
count=${1:-3}
ncpu=$(getconf _NPROCESSORS_ONLN)

out=$(go test ./internal/netsim/ -run '^$' \
	-bench 'DragonflyPoint' -benchtime 3x -count "$count" -timeout 10m)
echo "$out"

echo "$out" | awk -v benchcount="$count" -v ncpu="$ncpu" '
/^cpu:/ { $1 = ""; sub(/^ /, ""); cpu = $0 }
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	sum[name] += $3
	n[name]++
}
END {
	itb = sum["BenchmarkITBDragonflyPoint"] / n["BenchmarkITBDragonflyPoint"]
	vc = sum["BenchmarkVCDragonflyPoint"] / n["BenchmarkVCDragonflyPoint"]
	printf "{\n"
	printf "  \"bench\": \"ITB-RR vs VC flow control (2 lanes, LASH), small dragonfly (12 switches, 24 hosts), 512B, load 0.05\",\n"
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"cpus\": %d,\n", ncpu
	printf "  \"benchtime\": \"3x\",\n"
	printf "  \"count\": %d,\n", benchcount
	printf "  \"itb_ns_per_op\": %.0f,\n", itb
	printf "  \"vc_ns_per_op\": %.0f,\n", vc
	printf "  \"vc_over_itb\": %.2f,\n", vc / itb
	printf "  \"note\": \"vc_over_itb is the simulation-cost overhead of the VC switch pipeline (per-lane buffers + credit bookkeeping) relative to the ITB path on the same fabric and load; acceptance bar is around 2x or better.\"\n"
	printf "}\n"
}' > BENCH_7.json

cat BENCH_7.json
