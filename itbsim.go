// Package itbsim is a simulator and routing library for regular networks
// with source routing, reproducing "Improving the Performance of Regular
// Networks with Source Routing" (Flich, López, Malumbres, Duato — ICPP
// 2000).
//
// The library provides:
//
//   - Topology generators for the paper's networks: 2-D torus, 2-D torus
//     with express channels, and the Sandia CPLANT cluster, plus meshes,
//     hypercubes, random irregular networks and custom edge lists.
//   - Up*/down* source routing as Myrinet implements it, including a
//     re-implementation of the simple_routes balanced path selection.
//   - The in-transit buffer (ITB) mechanism: minimal source routes split
//     into legal up*/down* segments at intermediate hosts, with single-path
//     (ITB-SP) and round-robin (ITB-RR) path selection policies.
//   - A cycle-driven flit-level network simulator with Myrinet timing:
//     pipelined 160 MB/s links, stop & go flow control, 150 ns routing,
//     and NIC-level in-transit buffer handling.
//   - The paper's traffic patterns (uniform, bit-reversal, hotspot, local)
//     and experiment harnesses for every figure and table in §4.7.
//
// Quick start:
//
//	net, _ := itbsim.NewTorus(8, 8, 8)
//	table, _ := itbsim.BuildRoutes(net, itbsim.ITBRR)
//	dest, _ := itbsim.Uniform(net.NumHosts())
//	res, _ := itbsim.Simulate(itbsim.SimConfig{
//		Net: net, Table: table, Dest: dest,
//		Load: 0.02, MessageBytes: 512, Seed: 1,
//		WarmupMessages: 500, MeasureMessages: 2000,
//	})
//	fmt.Printf("latency %.0f ns at %.4f flits/ns/switch\n",
//		res.AvgLatencyNs, res.Accepted)
package itbsim

import (
	"io"

	"itbsim/internal/faults"
	"itbsim/internal/netsim"
	"itbsim/internal/routes"
	"itbsim/internal/topology"
	"itbsim/internal/traffic"
)

// Network is a static description of switches, hosts, and links.
type Network = topology.Network

// Scheme selects a routing algorithm.
type Scheme = routes.Scheme

// Routing schemes evaluated by the paper.
const (
	// UpDown is the original Myrinet up*/down* routing with
	// simple_routes-style balanced path selection.
	UpDown = routes.UpDown
	// ITBSP is minimal routing with in-transit buffers, single path.
	ITBSP = routes.ITBSP
	// ITBRR is minimal routing with in-transit buffers, round-robin over
	// up to 10 alternative minimal paths.
	ITBRR = routes.ITBRR
	// UpDownMin uses all shortest legal up*/down* paths round-robin, no
	// in-transit buffers — the alternative baseline §4.5 reports
	// simple_routes outperforms.
	UpDownMin = routes.UpDownMin
	// VC is minimal routing over virtual-channel flow control with a LASH
	// layer assignment: each route is pinned to one lane, lane 0 kept
	// deadlock-free as the escape layer. An alternative to ITBs that needs
	// no intermediate-host ejection; see docs/VC.md.
	VC = routes.VC
)

// RoutingTable maps host pairs to source routes under a scheme.
type RoutingTable = routes.Table

// RouteStats summarises static properties of a routing table.
type RouteStats = routes.Stats

// SimConfig configures a simulation run.
type SimConfig = netsim.Config

// SimParams are the Myrinet timing/sizing constants.
type SimParams = netsim.Params

// Result carries the measurements of a simulation run.
type Result = netsim.Result

// DestFn chooses message destinations; see the traffic constructors.
type DestFn = netsim.DestFn

// FaultPlan schedules link/switch failures and repairs at simulation
// cycles; set it on SimConfig.Faults (or RunSpec.Faults) to exercise
// degraded-mode routing. See docs/FAULTS.md.
type FaultPlan = faults.Plan

// FaultController recomputes routing tables on the surviving topology
// after each failure; set one on SimConfig.Reconfigurer (RunSpec wires a
// per-curve controller automatically).
type FaultController = faults.Controller

// ReconfigStat records one completed mid-run routing reconfiguration.
type ReconfigStat = netsim.ReconfigStat

// DropStats breaks Result.DroppedPackets down by cause.
type DropStats = netsim.DropStats

// StallDump is the stalled-packet diagnostic of a truncated run.
type StallDump = netsim.StallDump

// ParseFaultPlan parses the -faults command-line syntax, e.g.
// "link:12@200000,+link:12@800000".
func ParseFaultPlan(s string) (*FaultPlan, error) { return faults.ParsePlan(s) }

// NewFaultController returns a reconfiguration controller that re-runs
// topology discovery from mapperHost and rebuilds cfg's routes on the
// degraded graph.
func NewFaultController(net *Network, mapperHost int, cfg BuildRoutesConfig) *FaultController {
	return faults.NewController(net, mapperHost, cfg)
}

// ConfigError is the typed validation error of the New* topology
// constructors and of SimConfig validation: the offending field, the value
// given, and why it was rejected. Unwrap with errors.As:
//
//	if _, err := itbsim.NewTorus(1, 8, 8); err != nil {
//		var ce *itbsim.ConfigError
//		if errors.As(err, &ce) {
//			fmt.Println(ce.Field, ce.Reason)
//		}
//	}
type ConfigError = topology.ConfigError

// NewTorus builds a rows×cols 2-D torus with hostsPerSwitch hosts per
// 16-port switch. The paper's configuration is NewTorus(8, 8, 8).
func NewTorus(rows, cols, hostsPerSwitch int) (*Network, error) {
	return topology.NewTorus(rows, cols, hostsPerSwitch, 16)
}

// NewExpressTorus builds a 2-D torus whose switches also connect to their
// second-order neighbours through express channels. The paper's
// configuration is NewExpressTorus(8, 8, 8): all 16 switch ports used.
func NewExpressTorus(rows, cols, hostsPerSwitch int) (*Network, error) {
	return topology.NewExpressTorus(rows, cols, hostsPerSwitch, 16)
}

// NewCplant builds the Sandia CPLANT topology: 50 16-port switches in 6
// hypercube groups plus an extra pair, 8 hosts per switch in the paper's
// configuration.
func NewCplant(hostsPerSwitch int) (*Network, error) {
	return topology.NewCplant(hostsPerSwitch, 16)
}

// NewMesh builds a rows×cols 2-D mesh (no wrap-around).
func NewMesh(rows, cols, hostsPerSwitch int) (*Network, error) {
	return topology.NewMesh(rows, cols, hostsPerSwitch, 16)
}

// NewHypercube builds a dim-dimensional hypercube.
func NewHypercube(dim, hostsPerSwitch int) (*Network, error) {
	return topology.NewHypercube(dim, hostsPerSwitch, 16)
}

// NewTorus3D builds an x×y×z 3-D torus.
func NewTorus3D(x, y, z, hostsPerSwitch int) (*Network, error) {
	return topology.NewTorus3D(x, y, z, hostsPerSwitch, 16)
}

// NewFatTree builds a k-ary n-tree with k hosts per leaf switch.
func NewFatTree(k, n int) (*Network, error) {
	return topology.NewFatTree(k, n, 16)
}

// NewDragonfly builds a dragonfly: groups of aPerGroup fully-meshed
// routers, hPerRouter global links per router spreading over the other
// groups. A palmtree global arrangement keeps the fabric regular.
func NewDragonfly(groups, aPerGroup, hPerRouter, hostsPerSwitch int) (*Network, error) {
	return topology.NewDragonfly(groups, aPerGroup, hPerRouter, hostsPerSwitch, 16)
}

// NewHyperX builds a HyperX: switches on a multidimensional lattice, fully
// connected along every axis-aligned line.
func NewHyperX(dims []int, hostsPerSwitch int) (*Network, error) {
	return topology.NewHyperX(dims, hostsPerSwitch, 16)
}

// NewFullMesh builds a full mesh: every switch pair directly linked.
func NewFullMesh(switches, hostsPerSwitch int) (*Network, error) {
	return topology.NewFullMesh(switches, hostsPerSwitch, 16)
}

// NewCustom builds a network from an explicit switch-to-switch edge list
// with hostsPerSwitch hosts attached to every switch.
func NewCustom(name string, switches int, edges [][2]int, hostsPerSwitch, switchPorts int) (*Network, error) {
	return topology.NewFromEdges(name, switches, edges, hostsPerSwitch, switchPorts)
}

// BuildRoutes computes the routing table for a network under a scheme with
// the paper's defaults (root switch 0, at most 10 alternative routes).
func BuildRoutes(net *Network, s Scheme) (*RoutingTable, error) {
	return routes.Build(net, routes.DefaultConfig(s))
}

// BuildRoutesConfig exposes the full routing configuration.
type BuildRoutesConfig = routes.Config

// BuildRoutesWith computes a routing table with explicit configuration.
func BuildRoutesWith(net *Network, cfg BuildRoutesConfig) (*RoutingTable, error) {
	return routes.Build(net, cfg)
}

// DefaultParams returns the Myrinet constants of §4.3–§4.5.
func DefaultParams() SimParams { return netsim.DefaultParams() }

// Simulate runs one simulation. See SimConfig for the knobs.
func Simulate(cfg SimConfig) (*Result, error) { return netsim.Run(cfg) }

// Uniform returns the uniform destination distribution.
func Uniform(numHosts int) (DestFn, error) { return traffic.Uniform(numHosts) }

// BitReversal returns the bit-reversal permutation distribution (requires a
// power-of-two host count).
func BitReversal(numHosts int) (DestFn, error) { return traffic.BitReversal(numHosts) }

// Hotspot returns the hotspot distribution: fraction of the traffic goes to
// the hotspot host, the rest is uniform.
func Hotspot(numHosts, hotspot int, fraction float64) (DestFn, error) {
	return traffic.Hotspot(numHosts, hotspot, fraction)
}

// Local returns the local distribution: destinations at most maxSwitches
// switches away from the source.
func Local(net *Network, maxSwitches int) (DestFn, error) {
	return traffic.Local(net, maxSwitches)
}

// Selector chooses among alternative minimal routes at the source NIC; see
// SetSelector on RoutingTable. Beyond the paper's round-robin, the library
// provides random, fewest-ITB, and latency-adaptive policies (the source
// -host adaptivity the paper names as future work).
type Selector = routes.Selector

// AdaptiveConfig tunes NewAdaptiveSelector.
type AdaptiveConfig = routes.AdaptiveConfig

// NewRandomSelector picks a uniformly random alternative per message.
func NewRandomSelector(seed int64) Selector { return routes.NewRandomSelector(seed) }

// NewFewestITBSelector always picks the alternative with the fewest
// in-transit buffers.
func NewFewestITBSelector() Selector { return routes.NewFewestITBSelector() }

// NewAdaptiveSelector keeps an EWMA of observed latencies per alternative
// and routes over the lowest estimate. Feed it via SimConfig.Notify:
//
//	table.SetSelector(itbsim.NewAdaptiveSelector(itbsim.DefaultAdaptiveConfig()))
//	cfg.Notify = func(d itbsim.Delivery) { table.Observe(d.SrcHost, d.Route, d.LatencyNs) }
func NewAdaptiveSelector(cfg AdaptiveConfig) Selector { return routes.NewAdaptiveSelector(cfg) }

// DefaultAdaptiveConfig returns the recommended adaptive-selector tuning.
func DefaultAdaptiveConfig() AdaptiveConfig { return routes.DefaultAdaptiveConfig() }

// Delivery describes one delivered message, passed to SimConfig.Notify.
type Delivery = netsim.Delivery

// Tracer observes packet life-cycle events (generate, inject, per-switch
// route, ITB eject/re-inject, deliver); set SimConfig.Tracer to enable.
type Tracer = netsim.Tracer

// Event is one traced packet life-cycle event.
type Event = netsim.Event

// RingTracer retains the most recent events in a fixed-size ring.
type RingTracer = netsim.RingTracer

// CountTracer counts events by kind.
type CountTracer = netsim.CountTracer

// NewRingTracer allocates a tracer holding the last n events.
func NewRingTracer(n int) *RingTracer { return netsim.NewRingTracer(n) }

// EncodeNetwork writes a network as JSON; DecodeNetwork reads it back.
func EncodeNetwork(w io.Writer, n *Network) error { return topology.Encode(w, n) }

// DecodeNetwork reads a network written by EncodeNetwork.
func DecodeNetwork(r io.Reader) (*Network, error) { return topology.Decode(r) }

// EncodeRoutes writes a routing table as JSON; DecodeRoutes reads it back
// and validates it against the given network.
func EncodeRoutes(w io.Writer, t *RoutingTable) error { return routes.Encode(w, t) }

// DecodeRoutes reads a table written by EncodeRoutes.
func DecodeRoutes(r io.Reader, net *Network) (*RoutingTable, error) { return routes.Decode(r, net) }
