package itbsim_test

import (
	"fmt"
	"log"

	"itbsim"
)

// ExampleSimulate runs a short simulation of the paper's in-transit buffer
// routing on a small torus and prints whether it delivered everything.
func ExampleSimulate() {
	net, err := itbsim.NewTorus(4, 4, 1)
	if err != nil {
		log.Fatal(err)
	}
	table, err := itbsim.BuildRoutes(net, itbsim.ITBRR)
	if err != nil {
		log.Fatal(err)
	}
	dest, err := itbsim.Uniform(net.NumHosts())
	if err != nil {
		log.Fatal(err)
	}
	res, err := itbsim.Simulate(itbsim.SimConfig{
		Net: net, Table: table, Dest: dest,
		Load: 0.01, MessageBytes: 128, Seed: 1,
		WarmupMessages: 20, MeasureMessages: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.DeliveredMeasured >= 100)
	// Output: true
}

// ExampleBuildRoutes shows the static route statistics the paper quotes in
// §4.7.1: minimal routing with in-transit buffers always uses minimal
// paths.
func ExampleBuildRoutes() {
	net, err := itbsim.NewTorus(8, 8, 1)
	if err != nil {
		log.Fatal(err)
	}
	table, err := itbsim.BuildRoutes(net, itbsim.ITBSP)
	if err != nil {
		log.Fatal(err)
	}
	st := table.ComputeStats()
	fmt.Printf("minimal: %.0f%%, avg distance: %.2f\n", 100*st.MinimalFraction, st.AvgDistance)
	// Output: minimal: 100%, avg distance: 4.06
}

// ExampleNewMessageLayer sends one segmented message through the GM-style
// layer and waits for delivery.
func ExampleNewMessageLayer() {
	net, err := itbsim.NewTorus(2, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	table, err := itbsim.BuildRoutes(net, itbsim.UpDown)
	if err != nil {
		log.Fatal(err)
	}
	layer, err := itbsim.NewMessageLayer(itbsim.MessageLayerConfig{
		Net: net, Table: table, MTU: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	id, err := layer.Send(0, 3, 4096) // 4 segments
	if err != nil {
		log.Fatal(err)
	}
	if err := layer.Drain(); err != nil {
		log.Fatal(err)
	}
	m, err := layer.Message(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(m.Status == itbsim.MessageDelivered, m.Segments)
	// Output: true 4
}
